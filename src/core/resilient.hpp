// Resilient multiprefix — graceful degradation across execution strategies.
//
// A production collective distinguishes "the input is wrong" from "the
// machine under me failed". The first is hopeless (every strategy would
// reject the same labels); the second is often survivable by retrying on a
// simpler substrate. This driver encodes that policy:
//
//   kParallel   → kVectorized → kSerial      (threads, then one thread)
//   kChunked    → kVectorized → kSerial
//   kVectorized → kSerial
//   kSortBased  → kSerial
//   kSerial                                   (nothing simpler exists)
//
// The chains are not hard-coded here: they are walked from the fallback_next
// links in the strategy table (core/strategy.hpp), the same single source of
// truth the engine's dispatch registry is indexed by. A preferred kAuto is
// resolved to a concrete strategy by the engine before the chain is built.
//
// A stage is abandoned only on MpError{kPoolFailure, kExecutionFault,
// kBudgetExceeded} or std::bad_alloc (the serial sweep needs the least
// scratch memory); kInvalidLabel / kShapeMismatch propagate immediately,
// as do the governance stops kCancelled / kDeadlineExceeded
// (common/run_context.hpp) — see error.hpp.
// Every attempt, fallback and failure cause is counted in a
// FallbackCounters block (a process-wide one by default) so operators can
// see degradation happening instead of silently running slow.
//
// Opt-in self-verification cross-checks a sampled window of each stage's
// result against the brute-force definition (§1) in one extra O(n) pass —
// the same differential discipline the fuzz suite applies, priced for
// production. A mismatch counts as kExecutionFault and degrades further.
// Caveat: the check compares with operator==, so it is meant for exactly
// associative ops (integers, min/max, bitwise); floating-point PLUS may
// legitimately differ across strategies by rounding.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <new>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/run_context.hpp"
#include "core/multiprefix.hpp"
#include "obs/trace.hpp"

namespace mp {

// FallbackCounters and global_fallback_counters() live in
// common/run_context.hpp now (the engine's governed dispatch shares the
// block); this header re-exposes them by inclusion, unchanged.

/// The one shared definition of "a simpler substrate may still succeed":
/// substrate failures degrade along fallback_next; input-contract
/// violations (identical on every strategy) and governance stops
/// (kCancelled / kDeadlineExceeded — no stage can outrun them) do not.
/// Used by run_chain below and by the serving frontend's breaker-aware
/// dispatch loop (serve/frontend.cpp), so the two degradation paths can
/// never drift apart.
inline constexpr bool degradable_error(ErrorCode code) {
  return code == ErrorCode::kPoolFailure || code == ErrorCode::kExecutionFault ||
         code == ErrorCode::kBudgetExceeded;
}

struct ResilientOptions {
  /// kAuto is resolved by Engine::global() from (n, m) before the chain is
  /// walked.
  Strategy preferred = Strategy::kParallel;
  /// Cross-check a sampled window of every stage's result against the §1
  /// definition before accepting it (see file comment for the caveat).
  bool self_verify = false;
  std::size_t verify_window = 64;
  std::uint64_t verify_seed = 0x5eed5eed5eedULL;
  /// Counter block to update; null = context->counters, else
  /// global_fallback_counters().
  FallbackCounters* counters = nullptr;
  /// Called immediately before each stage runs. Observability / test seam:
  /// throwing MpError(kExecutionFault or kPoolFailure) from here fails the
  /// stage exactly as a lane fault would, which is how the fallback chain
  /// itself is tested without real hardware faults.
  std::function<void(Strategy)> attempt_hook;
  /// Run governance (deadline, cancellation, budget, retries —
  /// common/run_context.hpp), threaded into every stage's engine dispatch.
  /// kCancelled / kDeadlineExceeded are *not* degradable: no simpler
  /// substrate can outrun an expired deadline, so they propagate through
  /// the chain immediately. Must outlive the call. Null = ungoverned.
  const RunContext* context = nullptr;
};

/// What the resilient driver actually did, alongside the result.
template <class T>
struct ResilientOutcome {
  MultiprefixResult<T> result;
  Strategy used = Strategy::kSerial;  // stage that produced the result
  std::size_t fallbacks = 0;          // stages abandoned before it
  std::vector<Status> faults;         // why each abandoned stage failed
};

// Degradation order comes from fallback_chain (core/strategy.hpp): the
// preferred strategy followed by its fallback_next links down to kSerial.

namespace detail {

/// Picks the start of the verification window: deterministic in the seed,
/// covering min(window, n) elements.
inline std::pair<std::size_t, std::size_t> verify_span(std::size_t n, std::size_t window,
                                                       std::uint64_t seed) {
  const std::size_t len = window < n ? window : n;
  Xoshiro256 rng(seed);
  const std::size_t start = n > len ? rng.below(n - len + 1) : 0;
  return {start, len};
}

/// Single-pass windowed brute-force check (§1 definition): recomputes the
/// running per-class accumulator for every class that appears in
/// [lo, lo + len) and compares prefix values inside the window (when
/// `prefix` is nonnull) plus those classes' final reductions. O(n) time,
/// O(window) space. Returns an ok Status or kExecutionFault naming a
/// witness (prefix index, or n + class for a reduction mismatch).
template <class T, class Op>
Status verify_window(std::span<const T> values, std::span<const label_t> labels,
                     const std::vector<T>* prefix, std::span<const T> reduction, Op op,
                     std::size_t lo, std::size_t len, Strategy stage) {
  const std::size_t n = values.size();
  const std::size_t hi = lo + len < n ? lo + len : n;
  const T id = op.template identity<T>();

  std::unordered_map<label_t, T> acc;  // classes under scrutiny
  for (std::size_t i = lo; i < hi; ++i) acc.emplace(labels[i], id);

  auto mismatch = [&](std::size_t witness) {
    return Status(ErrorCode::kExecutionFault,
                  std::string("self-verification mismatch (") + to_string(stage) +
                      ", witness " + std::to_string(witness) + ")",
                  witness);
  };
  for (std::size_t j = 0; j < n; ++j) {
    const auto it = acc.find(labels[j]);
    if (it == acc.end()) continue;
    if (prefix != nullptr && j >= lo && j < hi && !((*prefix)[j] == it->second))
      return mismatch(j);
    it->second = op(it->second, values[j]);
  }
  for (const auto& [label, total] : acc)
    if (!(reduction[label] == total)) return mismatch(n + label);
  return Status::ok();
}

/// Shared fallback engine: walks the chain, classifies failures, maintains
/// counters and the outcome log. `attempt(stage)` produces a result;
/// `verify(stage, result)` returns ok or a fault that degrades further.
template <class Result, class AttemptFn, class VerifyFn>
Result run_chain(const ResilientOptions& options, Strategy preferred,
                 std::vector<Status>& faults, std::size_t& fallbacks, Strategy& used,
                 AttemptFn&& attempt, VerifyFn&& verify) {
  FallbackCounters& counters =
      options.counters != nullptr
          ? *options.counters
          : (options.context != nullptr ? options.context->sink()
                                        : global_fallback_counters());
  const std::vector<Strategy> chain = fallback_chain(preferred);
  // Span sink: the context's tracer, else the ambient one. Each stage gets
  // a kAttempt span (strategy tagged); the engine's kDispatch span and the
  // strategy's phase spans nest inside it, so a trace of a degraded run
  // shows the whole chain attempt by attempt.
  obs::Tracer* tracer = obs::sink_for(options.context);
  obs::ScopedBind bind(tracer);
  for (const Strategy stage : chain) {
    // A cancelled or deadline-expired call must not start another stage —
    // the engine already counted the event; here we just stop walking.
    if (options.context != nullptr) options.context->checkpoint();
    counters.attempts.fetch_add(1, std::memory_order_relaxed);
    obs::ScopedSpan attempt_span(tracer, obs::Phase::kAttempt,
                                 static_cast<int>(strategy_index(stage)));
    Status fault;
    try {
      if (options.attempt_hook) options.attempt_hook(stage);
      Result result = attempt(stage);
      fault = verify(stage, result);
      if (!fault.is_ok()) {
        counters.verify_failures.fetch_add(1, std::memory_order_relaxed);
      } else {
        counters.successes.fetch_add(1, std::memory_order_relaxed);
        used = stage;
        return result;
      }
    } catch (const MpError& e) {
      // Degradable or not is decided by degradable_error (shared with the
      // serving frontend's dispatch loop): substrate failures hop, contract
      // violations and governance stops propagate.
      if (!degradable_error(e.code())) throw;
      (e.code() == ErrorCode::kPoolFailure ? counters.pool_failures
                                           : counters.execution_faults)
          .fetch_add(1, std::memory_order_relaxed);
      fault = e.status();
    } catch (const std::bad_alloc&) {
      counters.execution_faults.fetch_add(1, std::memory_order_relaxed);
      fault = Status(ErrorCode::kExecutionFault,
                     std::string("allocation failure in ") + to_string(stage) + " stage");
    }
    counters.fallbacks.fetch_add(1, std::memory_order_relaxed);
    obs::count(tracer, obs::Event::kFallbackHop);
    if (tracer != nullptr)
      tracer->add_hop(static_cast<int>(strategy_index(stage)),
                      static_cast<int>(simd::level_index(simd::active_level())));
    faults.push_back(std::move(fault));
    ++fallbacks;
  }
  counters.exhausted.fetch_add(1, std::memory_order_relaxed);
  throw MpError(ErrorCode::kExecutionFault,
                "all fallback stages failed (last: " + faults.back().to_string() + ")");
}

}  // namespace detail

/// Multiprefix with graceful degradation (see file comment). Throws MpError
/// immediately for malformed inputs; throws MpError(kExecutionFault) only
/// when every stage of the chain has failed.
template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
ResilientOutcome<T> resilient_multiprefix(std::span<const T> values,
                                          std::span<const label_t> labels, std::size_t m,
                                          Op op = {}, const ResilientOptions& options = {}) {
  require_valid_inputs(values.size(), labels, m);  // hopeless — never degrade
  ResilientOutcome<T> outcome;
  const Strategy preferred = Engine::global().resolve(options.preferred, values.size(), m);
  const auto [lo, len] =
      detail::verify_span(values.size(), options.verify_window, options.verify_seed);
  const RunContext& ctx =
      options.context != nullptr ? *options.context : RunContext::none();
  outcome.result = detail::run_chain<MultiprefixResult<T>>(
      options, preferred, outcome.faults, outcome.fallbacks, outcome.used,
      [&](Strategy stage) { return multiprefix<T, Op>(values, labels, m, op, stage, ctx); },
      [&](Strategy stage, const MultiprefixResult<T>& result) {
        if (!options.self_verify) return Status::ok();
        return detail::verify_window<T, Op>(values, labels, &result.prefix,
                                            result.reduction, op, lo, len, stage);
      });
  return outcome;
}

/// Multireduce with the same degradation policy. Self-verification recounts
/// the sampled window's classes in one pass (no prefix portion by
/// construction). `outcome_out`, when nonnull, receives the fallback log.
template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
std::vector<T> resilient_multireduce(std::span<const T> values,
                                     std::span<const label_t> labels, std::size_t m,
                                     Op op = {}, const ResilientOptions& options = {},
                                     ResilientOutcome<T>* outcome_out = nullptr) {
  require_valid_inputs(values.size(), labels, m);
  ResilientOutcome<T> outcome;
  const Strategy preferred = Engine::global().resolve(options.preferred, values.size(), m);
  const auto [lo, len] =
      detail::verify_span(values.size(), options.verify_window, options.verify_seed);
  const RunContext& ctx =
      options.context != nullptr ? *options.context : RunContext::none();
  std::vector<T> reduction = detail::run_chain<std::vector<T>>(
      options, preferred, outcome.faults, outcome.fallbacks, outcome.used,
      [&](Strategy stage) { return multireduce<T, Op>(values, labels, m, op, stage, ctx); },
      [&](Strategy stage, const std::vector<T>& red) {
        if (!options.self_verify) return Status::ok();
        return detail::verify_window<T, Op>(values, labels, /*prefix=*/nullptr, red, op, lo,
                                            len, stage);
      });
  if (outcome_out != nullptr) *outcome_out = std::move(outcome);
  return reduction;
}

}  // namespace mp
