// Vectorized multiprefix execution over a SpinetreePlan (paper §4).
//
// The executor owns the rowsum/spinesum scratch (the unpacked fields of the
// paper's `spinerec`, Figure 9) and runs the three numeric phases:
//
//   ROWSUMS    — column sweep; every element folds its value into its
//                parent's rowsum. Children of one parent share a row, hence
//                occupy distinct columns, so each column's updates are
//                conflict-free and ascending columns preserve vector order.
//   SPINESUMS  — row sweep, bottom to top; each spine element forwards
//                op(spinesum, rowsum) to its parent, computing the
//                recurrence along the spine. Two modes:
//                  * full scan (paper-faithful): visit every element of the
//                    row and test the spine flag — this is the masked loop
//                    whose Cray behaviour §4.3 dissects;
//                  * compressed spine: visit only the precomputed spine
//                    elements of the row (identical result, less work on a
//                    cache machine).
//   MULTISUMS  — column sweep; each element reads its parent's spinesum as
//                its multiprefix value, then folds its own value in for the
//                next same-class element.
//
// The reduction for bucket b is op(spinesum[b], rowsum[b]): spinesum holds
// the class total excluding the top class row, rowsum the top row's sum —
// in vector order, so non-commutative operators are safe. `reduce` skips
// MULTISUMS entirely — the paper's multireduce shortcut (§4.2), worth ~7 of
// ~24 clocks per element on the Y-MP.
//
// An optional vm::Tracer records one event per issued "vector operation"
// (one per row or column sweep), which vm::CrayModel can price.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/run_context.hpp"
#include "common/timer.hpp"
#include "core/ops.hpp"
#include "core/result.hpp"
#include "core/spinetree_plan.hpp"
#include "core/workspace.hpp"
#include "obs/trace.hpp"
#include "simd/kernels.hpp"
#include "vm/tracer.hpp"

namespace mp {

/// Wall-clock seconds per phase of one execution; filled when requested via
/// Options::timings (used by the Table 3 characterization bench).
struct PhaseSeconds {
  double init = 0.0;
  double rowsums = 0.0;
  double spinesums = 0.0;
  double reduction = 0.0;
  double multisums = 0.0;
  double total() const { return init + rowsums + spinesums + reduction + multisums; }
};

template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
class SpinetreeExecutor {
 public:
  struct Options {
    /// Visit only precomputed spine elements in SPINESUMS (identical result;
    /// the full scan is the paper-faithful masked loop).
    bool compressed_spine = true;
    /// Run ROWSUMS/MULTISUMS in sequential element order instead of the
    /// paper's column sweeps (identical result — see the phase comments; a
    /// column sweep strides by row_len, one cache line per access on a
    /// cache machine). Ignored when tracing: the trace must reflect the
    /// vector-op structure. The Table 3 characterization turns this off to
    /// measure the paper's loop shape.
    bool sequential_grid_sweeps = true;
    /// If nonnull, records the vector operations each phase issues.
    vm::Tracer* tracer = nullptr;
    /// If nonnull, receives wall-clock seconds per phase.
    PhaseSeconds* timings = nullptr;
    /// If nonnull, governance checkpoints run at phase and chunk
    /// boundaries — see common/run_context.hpp. A cancelled or
    /// deadline-expired execution throws within one chunk's latency,
    /// between element combines (never mid-write).
    const RunContext* ctx = nullptr;
  };

  /// With a Workspace, the rowsum/spinesum scratch is borrowed from (and on
  /// destruction returned to) the pool instead of heap-allocated per
  /// executor — the zero-allocation path for repeated execution. The
  /// workspace must outlive the executor.
  explicit SpinetreeExecutor(const SpinetreePlan& plan, Op op = {}, Workspace* ws = nullptr)
      : plan_(&plan),
        op_(op),
        ws_(ws),
        rowsum_(ws != nullptr ? ws->acquire<T>(plan.m() + plan.n())
                              : std::vector<T>(plan.m() + plan.n())),
        spinesum_(ws != nullptr ? ws->acquire<T>(plan.m() + plan.n())
                                : std::vector<T>(plan.m() + plan.n())) {}

  ~SpinetreeExecutor() {
    if (ws_ != nullptr) {
      ws_->release(std::move(rowsum_));
      ws_->release(std::move(spinesum_));
    }
  }

  SpinetreeExecutor(const SpinetreeExecutor&) = delete;
  SpinetreeExecutor& operator=(const SpinetreeExecutor&) = delete;
  SpinetreeExecutor(SpinetreeExecutor&& other) noexcept
      : plan_(other.plan_),
        op_(other.op_),
        ws_(std::exchange(other.ws_, nullptr)),
        rowsum_(std::move(other.rowsum_)),
        spinesum_(std::move(other.spinesum_)) {}
  SpinetreeExecutor& operator=(SpinetreeExecutor&&) = delete;

  const SpinetreePlan& plan() const { return *plan_; }

  /// Full multiprefix: prefix.size() must be n; reduction.size() must be m
  /// or 0 (0 skips the reduction extraction).
  void execute(std::span<const T> values, std::span<T> prefix, std::span<T> reduction,
               const Options& options = {}) {
    MP_REQUIRE(values.size() == plan_->n(), "values size mismatch");
    MP_REQUIRE(prefix.size() == plan_->n(), "prefix size mismatch");
    run(ReadValue{values.data()}, prefix.data(), reduction, options);
  }

  /// Multireduce: reductions only (§4.2). reduction.size() must be m.
  void reduce(std::span<const T> values, std::span<T> reduction, const Options& options = {}) {
    MP_REQUIRE(values.size() == plan_->n(), "values size mismatch");
    MP_REQUIRE(reduction.size() == plan_->m(), "reduction size mismatch");
    run(ReadValue{values.data()}, static_cast<T*>(nullptr), reduction, options);
  }

  /// Enumerate: multiprefix of all-ones values (§5.1.1's first sort step).
  /// With Op = Plus, prefix[i] counts the preceding same-label elements and
  /// reduction[k] the class sizes; no value vector is read at all.
  void enumerate(std::span<T> prefix, std::span<T> reduction, const Options& options = {}) {
    MP_REQUIRE(prefix.size() == plan_->n(), "prefix size mismatch");
    run(ConstOne{}, prefix.data(), reduction, options);
  }

 private:
  struct ReadValue {
    const T* values;
    T operator()(std::size_t i) const { return values[i]; }
  };
  struct ConstOne {
    T operator()(std::size_t) const { return T{1}; }
  };

  template <class ValueFn>
  void run(ValueFn value, T* prefix, std::span<T> reduction, const Options& options) {
    MP_REQUIRE(reduction.empty() || reduction.size() == plan_->m(),
               "reduction size must be m (or 0 to skip)");
    const std::size_t n = plan_->n();
    const std::size_t m = plan_->m();
    const std::size_t L = plan_->shape().row_len;
    const std::size_t rows = plan_->shape().rows;
    const auto spine = plan_->spine();
    vm::Tracer* tracer = options.tracer;
    const RunContext* rc = options.ctx;
    obs::Tracer* obs_tracer = obs::sink_for(rc);  // null = all spans inert
    const T id = op_.template identity<T>();
    Timer phase_timer;
    auto lap = [&](double PhaseSeconds::*field) {
      if (options.timings) {
        options.timings->*field = phase_timer.seconds();
        phase_timer.reset();
      }
    };

    // Initialization: clear all temporaries (one parallel step, Figure 3) —
    // a SIMD broadcast-store sweep (workspace-acquired scratch arrives with
    // capacity only, so size first).
    checkpoint(rc);
    {
      obs::ScopedSpan span(obs_tracer, obs::Phase::kInit);
      rowsum_.resize(m + n);
      spinesum_.resize(m + n);
      simd::fill(std::span<T>(rowsum_), id);
      simd::fill(std::span<T>(spinesum_), id);
    }
    if (tracer) tracer->record(vm::OpKind::kFill, 2 * (m + n));
    lap(&PhaseSeconds::init);

    // ROWSUMS: columns left to right. A parent's children all share one row
    // and ascend by column there, so sequential element order applies each
    // parent's updates in exactly the column-sweep order — bit-identical
    // for non-commutative ops. Untraced runs default to it (the column
    // sweep strides by L, a fresh cache line per access on a cache
    // machine); the traced sweep is the paper's vector-op structure.
    {
      obs::ScopedSpan span(obs_tracer, obs::Phase::kRowsums);
      if (tracer == nullptr && options.sequential_grid_sweeps) {
        std::size_t i = 0;
        while (i < n) {
          checkpoint(rc);
          const std::size_t stop =
              rc != nullptr && n - i > kCancelCheckBlock ? i + kCancelCheckBlock : n;
          for (; i < stop; ++i) {
            const auto s = spine[m + i];
            rowsum_[s] = op_(rowsum_[s], value(i));
          }
        }
      } else {
        for (std::size_t c = 0; c < L && c < n; ++c) {
          checkpoint(rc);  // one column per iteration — the paper's chunk
          std::size_t cnt = 0;
          for (std::size_t i = c; i < n; i += L) {
            const auto s = spine[m + i];
            rowsum_[s] = op_(rowsum_[s], value(i));
            ++cnt;
          }
          if (tracer) tracer->record(vm::OpKind::kScatterCombine, cnt);
        }
      }
    }
    lap(&PhaseSeconds::rowsums);

    // SPINESUMS: rows bottom to top.
    {
      obs::ScopedSpan span(obs_tracer, obs::Phase::kSpinesums);
      if (options.compressed_spine) {
        for (std::size_t r = 0; r < rows; ++r) {
          if (rc != nullptr && (r & 255) == 0) rc->checkpoint();  // row = chunk
          const auto elems = plan_->spine_elements_of_row(r);
          for (const auto e : elems) {
            const auto p = spine[m + e];
            spinesum_[p] = op_(spinesum_[m + e], rowsum_[m + e]);
          }
          if (tracer && !elems.empty())
            tracer->record(vm::OpKind::kScatterCombine, elems.size());
        }
      } else {
        const auto flags = plan_->is_spine_flags();
        for (std::size_t r = 0; r < rows; ++r) {
          if (rc != nullptr && (r & 255) == 0) rc->checkpoint();
          const std::size_t lo = r * L;
          const std::size_t hi = lo + L < n ? lo + L : n;
          for (std::size_t i = lo; i < hi; ++i) {
            if (!flags[i]) continue;
            const auto p = spine[m + i];
            spinesum_[p] = op_(spinesum_[m + i], rowsum_[m + i]);
          }
          if (tracer && lo < hi)
            tracer->record(vm::OpKind::kMaskedScatterCombine, hi - lo);
        }
      }
    }
    lap(&PhaseSeconds::spinesums);

    // Reduction extraction happens here, directly after SPINESUMS (§4.2):
    // spinesum (all rows below the top class row) op rowsum (the top class
    // row) — vector order preserved. It must precede MULTISUMS, which
    // consumes the spinesum values.
    if (!reduction.empty()) {
      checkpoint(rc);
      obs::ScopedSpan span(obs_tracer, obs::Phase::kReduction);
      simd::combine(std::span<const T>(spinesum_.data(), m),
                    std::span<const T>(rowsum_.data(), m), reduction.first(m), op_);
      if (tracer) tracer->record(vm::OpKind::kElementwise, m);
    }
    lap(&PhaseSeconds::reduction);

    // MULTISUMS (the PREFIXSUM loop): columns left to right; skipped for
    // multireduce. Sequential order is valid for the same reason as
    // ROWSUMS: each prefix[i]/spinesum[s] pair involves only parent s,
    // whose children arrive in column order either way.
    if (prefix != nullptr) {
      obs::ScopedSpan span(obs_tracer, obs::Phase::kMultisums);
      if (tracer == nullptr && options.sequential_grid_sweeps) {
        std::size_t i = 0;
        while (i < n) {
          checkpoint(rc);
          const std::size_t stop =
              rc != nullptr && n - i > kCancelCheckBlock ? i + kCancelCheckBlock : n;
          for (; i < stop; ++i) {
            const auto s = spine[m + i];
            prefix[i] = spinesum_[s];
            spinesum_[s] = op_(spinesum_[s], value(i));
          }
        }
      } else {
        for (std::size_t c = 0; c < L && c < n; ++c) {
          checkpoint(rc);
          std::size_t cnt = 0;
          for (std::size_t i = c; i < n; i += L) {
            const auto s = spine[m + i];
            prefix[i] = spinesum_[s];
            spinesum_[s] = op_(spinesum_[s], value(i));
            ++cnt;
          }
          if (tracer) {
            tracer->record(vm::OpKind::kGather, cnt);
            tracer->record(vm::OpKind::kScatterCombine, cnt);
          }
        }
      }
    }
    lap(&PhaseSeconds::multisums);
  }

  const SpinetreePlan* plan_;
  Op op_;
  Workspace* ws_ = nullptr;
  std::vector<T> rowsum_;
  std::vector<T> spinesum_;
};

}  // namespace mp
