// The execution engine: one dispatch table, one plan cache, one scratch
// pool — the serving layer over the paper's algorithms.
//
// Before the engine, every entry point (the facade, the resilient wrappers,
// SpMV, rank sort) re-implemented strategy dispatch as its own switch and
// paid plan construction and scratch allocation per call. The engine
// centralizes the three amortizations the paper identifies:
//
//   * strategy registry — kStrategyRegistry<T, Op> is the single table
//     mapping a concrete Strategy to its multiprefix/multireduce runner;
//     every dispatch in the library indexes this table (no per-call
//     switches). The degradation links consumed by core/resilient.hpp come
//     from the same row (strategy.hpp's fallback_next).
//   * plan cache — spinetrees depend only on the labels (§5.2.1); recurring
//     label vectors hit a thread-safe LRU (core/plan_cache.hpp) keyed by a
//     128-bit fingerprint, so plan-based strategies pay construction once
//     per distinct label vector instead of once per call.
//   * workspace — per-thread scratch pools (core/workspace.hpp) make the
//     steady state allocation-free: executors borrow rowsum/spinesum
//     buffers and return them on destruction.
//
// Strategy::kAuto is resolved here, from the regime analysis of §4.3/§4.4
// and Figure 10: tiny n is serial (startup dominates — the n_1/2 effect);
// high load factor n/m favors the chunked two-level algorithm (work
// O(n + P·m) with a small dense matrix); low load factor at scale runs the
// spinetree, threaded when the pool and size justify it. The plan cache's
// key-only "sightings" add the serving-shaped rule: a label vector seen
// before promotes to a plan-based strategy, because its next plan is (or
// will be) cached.
//
// The one-shot facade (core/multiprefix.hpp) is a thin shim over
// Engine::global(); construct private Engines in tests to control options
// and observe counters in isolation.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/labels.hpp"
#include "common/run_context.hpp"
#include "core/chunked.hpp"
#include "core/erased.hpp"
#include "core/executor.hpp"
#include "core/ops.hpp"
#include "core/parallel_executor.hpp"
#include "core/plan_cache.hpp"
#include "core/result.hpp"
#include "core/serial.hpp"
#include "core/sort_based.hpp"
#include "core/spinetree_plan.hpp"
#include "core/strategy.hpp"
#include "core/workspace.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "simd/dispatch.hpp"
#include "simd/kernels.hpp"

namespace mp {

/// Validates a (values, labels, m) triple before dispatch and throws the
/// structured error on violation. Every engine entry point runs this, so
/// malformed inputs are rejected with a precise index (error.hpp) instead of
/// indexing out-of-range buckets inside the sweep. The check is one
/// vectorized pass over the labels — O(n) with a small constant, negligible
/// next to any of the algorithms themselves.
inline void require_valid_inputs(std::size_t values_size, std::span<const label_t> labels,
                                 std::size_t m) {
  if (Status st = validate_inputs(values_size, labels, m); !st.is_ok())
    throw MpError(std::move(st));
}

class Engine {
 public:
  struct Options {
    /// Plan cache budgets (entries and bytes); see core/plan_cache.hpp.
    PlanCache::Options cache;
    /// When false, every plan-based run builds a fresh plan (the pre-engine
    /// behaviour; benchmarks measuring setup cost need this).
    bool use_plan_cache = true;
    /// When false, executors heap-allocate their scratch per call instead of
    /// borrowing from the thread workspace — with use_plan_cache=false this
    /// reproduces the pre-engine cost model exactly (ablation benchmarks).
    bool use_workspace = true;
    /// Pool for threaded strategies; null means ThreadPool::global().
    ThreadPool* pool = nullptr;
    /// kAuto: below this n the serial sweep wins (vector startup / n_1/2).
    std::size_t auto_serial_max_n = 8192;
    /// kAuto: minimum n before the phase-parallel schedule pays for its
    /// fork/join; below it single-thread vectorized is preferred.
    std::size_t auto_parallel_min_n = std::size_t{1} << 16;
    /// Span/metrics sink for every run this engine dispatches (off by
    /// default — the disabled path costs two pointer tests). Overridden per
    /// run by RunContext::tracer; when both are null the ambient tracer
    /// (obs::ScopedTracer / MP_TRACE) applies.
    obs::Tracer* tracer = nullptr;
    /// SIMD kernel tier for every strategy this engine dispatches (the
    /// kernels themselves live in simd/kernels.hpp and are shared by all
    /// strategies, so there is no separate "simd strategy" to pick — kAuto
    /// and the fallback chain inherit the tier for free). Unset means keep
    /// the process default: MP_SIMD_LEVEL env if set, else the detected
    /// widest profitable tier. Constructing an engine with a set level
    /// applies it process-wide (simd::set_active_level).
    std::optional<simd::SimdLevel> simd_level;
  };

  /// Copyable snapshot of the dispatch counters. `runs` and `auto_picks`
  /// are indexed by strategy_index() over the concrete strategies.
  struct CountersSnapshot {
    std::uint64_t calls = 0;
    std::array<std::uint64_t, kStrategyCount> runs{};
    std::array<std::uint64_t, kStrategyCount> auto_picks{};
  };

  Engine();
  explicit Engine(const Options& options);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// The process-wide engine the one-shot facade dispatches through.
  static Engine& global();

  /// Per-thread scratch pool shared by all engines (buffers stay NUMA/cache
  /// local to the thread that uses them).
  static Workspace& thread_workspace();

  const Options& options() const { return options_; }
  /// The SIMD tier kernels will dispatch on for calls made now (the
  /// process-wide active level; see Options::simd_level).
  simd::SimdLevel simd_level() const { return simd::active_level(); }
  ThreadPool& pool() const;
  /// The scratch pool executors should borrow from — the calling thread's
  /// workspace, or null when the workspace ablation is off.
  Workspace* scratch() const { return options_.use_workspace ? &thread_workspace() : nullptr; }
  PlanCache& plan_cache() { return plan_cache_; }
  const PlanCache& plan_cache() const { return plan_cache_; }
  /// Copyable residency snapshot of the plan cache (hits / misses /
  /// evictions / oversize bypasses / shard contention), aggregated across
  /// shards. Scenario code diffs this across a run to assert plan
  /// residency — apps/mesh_tally gates zero misses after its first sweep,
  /// and bench/mesh_tally turns the delta into the tally_plan_hit_rate
  /// floor CI enforces.
  PlanCache::Stats plan_stats() const { return plan_cache_.stats(); }

  /// Resolves a requested strategy to a concrete one. Non-kAuto requests
  /// pass through unchanged. kAuto applies the regime table (§4.3/Fig 10);
  /// `plan_available` is the caller's knowledge that a plan for the labels
  /// is cached or imminent (recurring label vector) and promotes plan-based
  /// strategies. Pure function of its arguments plus the engine options.
  Strategy resolve(Strategy requested, std::size_t n, std::size_t m,
                   bool plan_available = false) const;

  /// Public form of the kAuto sighting + resolution for external
  /// dispatchers (the serving frontend picks its strategy *before* dispatch
  /// so it can route around circuit-breaker-open cells along the fallback
  /// chain): notes the label vector in the plan cache — the recurring-labels
  /// detector that promotes plan-based strategies — and resolves `requested`
  /// exactly as the engine's own entry points would.
  Strategy resolve_for(std::span<const label_t> labels, std::size_t m,
                       Strategy requested = Strategy::kAuto) {
    return resolved(requested, labels, m);
  }

  /// The (possibly cached) spinetree plan for (labels, m) with auto shape.
  /// `build_pool`, when nonnull, parallelizes a cache-miss build — pass the
  /// engine pool only from strategies already licensed to touch it.
  std::shared_ptr<const SpinetreePlan> plan(std::span<const label_t> labels, std::size_t m,
                                            ThreadPool* build_pool = nullptr);

  /// Full multiprefix into caller buffers; m = reduction.size(),
  /// prefix.size() must equal values.size(). All m reduction slots are
  /// written (identity for unreferenced classes). `ctx` governs the run
  /// (deadline, cancellation, byte budget, retries — see
  /// common/run_context.hpp); the default context is ungoverned and adds no
  /// cost.
  template <class T, class Op = Plus>
    requires AssociativeOp<Op, T>
  void multiprefix_into(std::span<const T> values, std::span<const label_t> labels,
                        std::span<T> prefix, std::span<T> reduction, Op op = {},
                        Strategy strategy = Strategy::kAuto,
                        const RunContext& ctx = RunContext::none());

  /// Multireduce into a caller buffer; m = reduction.size().
  template <class T, class Op = Plus>
    requires AssociativeOp<Op, T>
  void multireduce_into(std::span<const T> values, std::span<const label_t> labels,
                        std::span<T> reduction, Op op = {},
                        Strategy strategy = Strategy::kAuto,
                        const RunContext& ctx = RunContext::none());

  /// Batched tiny-n multiprefix: executes bounds.size()-1 concatenated
  /// requests in ONE fused segmented sweep. Request r owns elements
  /// [bounds[r], bounds[r+1]) of values/labels/prefix; labels are already
  /// offset into disjoint class ranges of a shared [0, m) space (the serving
  /// frontend's coalescing transform) with m = reduction.size(). Each
  /// request's recurrence starts from identity cells and never touches
  /// another request's classes, so the output is memcmp-identical — for
  /// every dtype, floats included — to dispatching each request separately
  /// through the serial sweep; what the batch buys is one
  /// validation/dispatch/fill per hundreds of requests plus the banded
  /// kernel interleaving four requests' dependency chains at the vector
  /// tiers. Counted as one kSerial run (the per-request resolution for
  /// every n < auto_serial_max_n request).
  template <class T, class Op = Plus>
    requires AssociativeOp<Op, T>
  void multiprefix_batched_into(std::span<const T> values, std::span<const label_t> labels,
                                std::span<const std::size_t> bounds, std::span<T> prefix,
                                std::span<T> reduction, Op op = {},
                                const RunContext& ctx = RunContext::none());

  /// Multireduce form of the batched tiny-n sweep (accumulate only).
  template <class T, class Op = Plus>
    requires AssociativeOp<Op, T>
  void multireduce_batched_into(std::span<const T> values, std::span<const label_t> labels,
                                std::span<const std::size_t> bounds, std::span<T> reduction,
                                Op op = {}, const RunContext& ctx = RunContext::none());

  /// Allocating forms of the above.
  template <class T, class Op = Plus>
    requires AssociativeOp<Op, T>
  MultiprefixResult<T> multiprefix(std::span<const T> values, std::span<const label_t> labels,
                                   std::size_t m, Op op = {},
                                   Strategy strategy = Strategy::kAuto,
                                   const RunContext& ctx = RunContext::none()) {
    MultiprefixResult<T> out(values.size(), m, op.template identity<T>());
    multiprefix_into<T, Op>(values, labels, std::span<T>(out.prefix),
                            std::span<T>(out.reduction), op, strategy, ctx);
    return out;
  }

  template <class T, class Op = Plus>
    requires AssociativeOp<Op, T>
  std::vector<T> multireduce(std::span<const T> values, std::span<const label_t> labels,
                             std::size_t m, Op op = {},
                             Strategy strategy = Strategy::kAuto,
                             const RunContext& ctx = RunContext::none()) {
    std::vector<T> reduction(m, op.template identity<T>());
    multireduce_into<T, Op>(values, labels, std::span<T>(reduction), op, strategy, ctx);
    return reduction;
  }

  /// Non-template entry point of the type-erased ABI: dispatches a
  /// runtime-described request (core/erased.hpp) through the exact
  /// kStrategyRegistry<T, Op> instantiation the templated API indexes, so
  /// erased and templated results are bit-identical by construction. Buffers
  /// are raw because the element type is data: `values` holds n elements of
  /// desc.dtype, `reduction` m elements, and `prefix` n elements (required
  /// for kMultiprefix, ignored for kMultireduce — pass null). Throws MpError
  /// with kUnsupported for descriptors outside the dispatch table; every
  /// other behaviour (validation, kAuto resolution, governance, counters)
  /// is the templated entry point's, because it *is* the templated entry
  /// point one function-pointer hop down. Defined in engine.cpp, where the
  /// dispatch table over (kDTypeCount × kOpKindCount) is built once.
  void run(const RequestDesc& desc, const void* values, const label_t* labels, void* prefix,
           void* reduction, std::size_t n, std::size_t m,
           Strategy strategy = Strategy::kAuto, const RunContext& ctx = RunContext::none());

  /// Type-erased twin of multiprefix_batched_into / multireduce_batched_into
  /// (desc.kind selects which): `bounds` has batch+1 entries, `prefix` is
  /// required for kMultiprefix and ignored for kMultireduce. Same
  /// bit-identity contract as the templated forms; defined in engine.cpp
  /// next to run()'s dispatch table.
  void run_batched(const RequestDesc& desc, const void* values, const label_t* labels,
                   const std::size_t* bounds, std::size_t batch, void* prefix,
                   void* reduction, std::size_t n, std::size_t m,
                   const RunContext& ctx = RunContext::none());

  CountersSnapshot counters() const;
  void reset_counters();

 private:
  /// First strategy along `preferred`'s fallback chain whose estimated
  /// scratch (strategy_scratch_bytes) fits `budget` bytes; kSerial (zero
  /// scratch) always fits. Pre-emptive arm of budget governance.
  Strategy budget_fit(Strategy preferred, std::size_t n, std::size_t m,
                      std::size_t elem_size, std::size_t budget) const;

  /// The governed dispatch loop shared by multiprefix_into/multireduce_into.
  /// invoke(stage, rc) must run the registry row for `stage`, writing the
  /// full output (so a degraded rerun simply overwrites any partial result —
  /// bit-identical outputs either way, every strategy computes the same
  /// function). Policy:
  ///   * kCancelled / kDeadlineExceeded — counted once, rethrown (no stage
  ///     can outrun a deadline that already expired);
  ///   * kPoolFailure — retried in place up to ctx.retry.max_retries times
  ///     with backoff (transient substrate failure), then rethrown for the
  ///     resilient chain;
  ///   * kBudgetExceeded / bad_alloc under a budget — degrade to the serial
  ///     sweep (zero scratch) and rerun.
  /// The span/metrics sink for a run: RunContext::tracer wins, then the
  /// engine option, then the ambient tracer (ScopedTracer / MP_TRACE).
  /// Tracing disabled = all three null — the instrumentation below reduces
  /// to pointer tests.
  obs::Tracer* run_tracer(const RunContext& ctx) const {
    if (ctx.tracer != nullptr) return ctx.tracer;
    if (options_.tracer != nullptr) return options_.tracer;
    return obs::active_tracer();
  }

  /// One strategy attempt under a kDispatch span tagged (strategy, SIMD
  /// tier), with the context's checkpoint-poll delta attributed to the span
  /// whether the attempt returns or throws.
  template <class Invoke>
  void traced_attempt(obs::Tracer* tracer, Strategy stage, const RunContext* rc,
                      Invoke&& invoke) {
    if (tracer == nullptr) {
      invoke(stage, rc);
      return;
    }
    obs::ScopedSpan span(tracer, obs::Phase::kDispatch,
                         static_cast<int>(strategy_index(stage)),
                         static_cast<int>(simd::level_index(simd::active_level())));
    const std::uint64_t polls0 = rc != nullptr ? rc->poll_count() : 0;
    const auto settle = [&] {
      const std::uint64_t polls = (rc != nullptr ? rc->poll_count() : 0) - polls0;
      span.note_polls(polls);
      obs::count(tracer, obs::Event::kCheckpointPoll, polls);
    };
    try {
      invoke(stage, rc);
    } catch (...) {
      settle();
      throw;
    }
    settle();
  }

  template <class Invoke>
  void governed_dispatch(Strategy s, std::size_t n, std::size_t m, std::size_t elem_size,
                         const RunContext& ctx, Invoke&& invoke) {
    obs::Tracer* tracer = run_tracer(ctx);
    if (!ctx.governed()) {
      if (tracer == nullptr) {  // the zero-cost fast path: two pointer tests
        invoke(s, static_cast<const RunContext*>(nullptr));
        return;
      }
      obs::ScopedBind bind(tracer);  // executors/plan cache resolve the same sink
      traced_attempt(tracer, s, nullptr, invoke);
      return;
    }
    obs::ScopedBind bind(tracer);
    FallbackCounters& counters = ctx.sink();
    if (Status st = ctx.poll(); !st.is_ok()) {  // refuse dead-on-arrival runs
      (st.code() == ErrorCode::kCancelled ? counters.cancellations
                                          : counters.deadlines_exceeded)
          .fetch_add(1, std::memory_order_relaxed);
      obs::count(tracer, st.code() == ErrorCode::kCancelled
                             ? obs::Event::kCancelled
                             : obs::Event::kDeadlineExceeded);
      throw MpError(std::move(st));
    }
    Strategy stage = s;
    if (ctx.memory_governed()) {
      stage = budget_fit(s, n, m, elem_size, ctx.remaining_bytes());
      if (stage != s) {
        counters.budget_degrades.fetch_add(1, std::memory_order_relaxed);
        obs::count(tracer, obs::Event::kBudgetDegrade);
      }
    }
    std::size_t attempt = 0;
    for (;;) {
      try {
        Workspace::BudgetScope budget(scratch(), &ctx);
        traced_attempt(tracer, stage, &ctx, invoke);
        return;
      } catch (const MpError& e) {
        if (e.code() == ErrorCode::kCancelled || e.code() == ErrorCode::kDeadlineExceeded) {
          (e.code() == ErrorCode::kCancelled ? counters.cancellations
                                             : counters.deadlines_exceeded)
              .fetch_add(1, std::memory_order_relaxed);
          obs::count(tracer, e.code() == ErrorCode::kCancelled
                                 ? obs::Event::kCancelled
                                 : obs::Event::kDeadlineExceeded);
          throw;
        }
        if (e.code() == ErrorCode::kBudgetExceeded && stage != Strategy::kSerial) {
          counters.budget_degrades.fetch_add(1, std::memory_order_relaxed);
          obs::count(tracer, obs::Event::kBudgetDegrade);
          stage = Strategy::kSerial;  // zero scratch always fits
          continue;
        }
        if (e.code() == ErrorCode::kPoolFailure && attempt < ctx.retry.max_retries) {
          ++attempt;
          counters.pool_retries.fetch_add(1, std::memory_order_relaxed);
          obs::count(tracer, obs::Event::kRetry);
          if (ctx.retry.backoff.count() > 0) std::this_thread::sleep_for(ctx.retry.backoff);
          // The backoff may have consumed the deadline — counted poll, as
          // in the precheck above.
          if (Status st = ctx.poll(); !st.is_ok()) {
            (st.code() == ErrorCode::kCancelled ? counters.cancellations
                                                : counters.deadlines_exceeded)
                .fetch_add(1, std::memory_order_relaxed);
            obs::count(tracer, st.code() == ErrorCode::kCancelled
                                   ? obs::Event::kCancelled
                                   : obs::Event::kDeadlineExceeded);
            throw MpError(std::move(st));
          }
          continue;
        }
        throw;
      } catch (const std::bad_alloc&) {
        if (!ctx.memory_governed() || stage == Strategy::kSerial) throw;
        counters.budget_degrades.fetch_add(1, std::memory_order_relaxed);
        obs::count(tracer, obs::Event::kBudgetDegrade);
        stage = Strategy::kSerial;
        continue;
      }
    }
  }

  /// kAuto resolution with the sighting side effect: notes the label key in
  /// the cache (recurring-vector detection) and counts the pick.
  Strategy resolved(Strategy requested, std::span<const label_t> labels, std::size_t m);

  void count_run(Strategy s) {
    counters_.calls.fetch_add(1, std::memory_order_relaxed);
    counters_.runs[strategy_index(s)].fetch_add(1, std::memory_order_relaxed);
  }

  struct AtomicCounters {
    std::atomic<std::uint64_t> calls{0};
    std::array<std::atomic<std::uint64_t>, kStrategyCount> runs{};
    std::array<std::atomic<std::uint64_t>, kStrategyCount> auto_picks{};
  };

  Options options_;
  PlanCache plan_cache_;
  mutable AtomicCounters counters_;
};

namespace detail {

// ---------------------------------------------------------------------------
// Registry entries: one multiprefix and one multireduce runner per concrete
// strategy, all with the uniform into-buffer signature. Inputs are already
// validated; reduction.size() is m. `rc` is the run's governance context
// (null for ungoverned dispatch) — every runner threads it down to the pass
// loops so checkpoints fire at chunk boundaries.

template <class T, class Op>
void run_serial_mp(Engine&, std::span<const T> values, std::span<const label_t> labels,
                   std::span<T> prefix, std::span<T> reduction, Op op,
                   const RunContext* rc) {
  // The Figure 2 sweep clears only referenced buckets; the into contract
  // promises identity in the rest.
  simd::fill(reduction, op.template identity<T>());
  multiprefix_serial_into<T, Op>(values, labels, prefix, reduction, op, rc);
}

template <class T, class Op>
void run_serial_mr(Engine&, std::span<const T> values, std::span<const label_t> labels,
                   std::span<T> reduction, Op op, const RunContext* rc) {
  simd::fill(reduction, op.template identity<T>());
  multireduce_serial_into<T, Op>(values, labels, reduction, op, rc);
}

template <class T, class Op>
void run_vectorized_mp(Engine& eng, std::span<const T> values,
                       std::span<const label_t> labels, std::span<T> prefix,
                       std::span<T> reduction, Op op, const RunContext* rc) {
  // Never pass the pool here: this entry is the fallback stage that must
  // work when the pool is faulted (core/resilient.hpp).
  checkpoint(rc);  // a cache-miss plan build is a whole phase of work
  const auto plan = eng.plan(labels, reduction.size(), nullptr);
  SpinetreeExecutor<T, Op> exec(*plan, op, eng.scratch());
  typename SpinetreeExecutor<T, Op>::Options opts;
  opts.ctx = rc;
  exec.execute(values, prefix, reduction, opts);
}

template <class T, class Op>
void run_vectorized_mr(Engine& eng, std::span<const T> values,
                       std::span<const label_t> labels, std::span<T> reduction, Op op,
                       const RunContext* rc) {
  checkpoint(rc);
  const auto plan = eng.plan(labels, reduction.size(), nullptr);
  SpinetreeExecutor<T, Op> exec(*plan, op, eng.scratch());
  typename SpinetreeExecutor<T, Op>::Options opts;
  opts.ctx = rc;
  exec.reduce(values, reduction, opts);
}

template <class T, class Op>
void run_parallel_mp(Engine& eng, std::span<const T> values, std::span<const label_t> labels,
                     std::span<T> prefix, std::span<T> reduction, Op op,
                     const RunContext* rc) {
  checkpoint(rc);
  const auto plan = eng.plan(labels, reduction.size(), &eng.pool());
  ParallelSpinetreeExecutor<T, Op> exec(*plan, eng.pool(), op, kDefaultGrain, eng.scratch(),
                                        rc);
  exec.execute(values, prefix, reduction);
}

template <class T, class Op>
void run_parallel_mr(Engine& eng, std::span<const T> values, std::span<const label_t> labels,
                     std::span<T> reduction, Op op, const RunContext* rc) {
  checkpoint(rc);
  const auto plan = eng.plan(labels, reduction.size(), &eng.pool());
  ParallelSpinetreeExecutor<T, Op> exec(*plan, eng.pool(), op, kDefaultGrain, eng.scratch(),
                                        rc);
  exec.reduce(values, reduction);
}

template <class T, class Op>
void run_sort_based_mp(Engine&, std::span<const T> values, std::span<const label_t> labels,
                       std::span<T> prefix, std::span<T> reduction, Op op,
                       const RunContext* rc) {
  multiprefix_sort_based_into<T, Op>(values, labels, prefix, reduction, op, rc);
}

template <class T, class Op>
void run_sort_based_mr(Engine&, std::span<const T> values, std::span<const label_t> labels,
                       std::span<T> reduction, Op op, const RunContext* rc) {
  multireduce_sort_based_into<T, Op>(values, labels, reduction, op, rc);
}

template <class T, class Op>
void run_chunked_mp(Engine& eng, std::span<const T> values, std::span<const label_t> labels,
                    std::span<T> prefix, std::span<T> reduction, Op op,
                    const RunContext* rc) {
  multiprefix_chunked_into<T, Op>(values, labels, prefix, reduction, eng.pool(), op,
                                  /*chunks_hint=*/0, rc);
}

template <class T, class Op>
void run_chunked_mr(Engine& eng, std::span<const T> values, std::span<const label_t> labels,
                    std::span<T> reduction, Op op, const RunContext* rc) {
  multireduce_chunked_into<T, Op>(values, labels, reduction, eng.pool(), op,
                                  /*chunks_hint=*/0, rc);
}

/// One row of the dispatch table.
template <class T, class Op>
struct StrategyFns {
  void (*run_multiprefix)(Engine&, std::span<const T>, std::span<const label_t>,
                          std::span<T>, std::span<T>, Op, const RunContext*);
  void (*run_multireduce)(Engine&, std::span<const T>, std::span<const label_t>,
                          std::span<T>, Op, const RunContext*);
};

/// THE strategy-dispatch table — indexed by strategy_index() in enum order,
/// mirroring kStrategyInfo row for row. Every multiprefix/multireduce in the
/// library dispatches through here.
template <class T, class Op>
inline constexpr std::array<StrategyFns<T, Op>, kStrategyCount> kStrategyRegistry = {{
    {&run_serial_mp<T, Op>, &run_serial_mr<T, Op>},          // kSerial
    {&run_vectorized_mp<T, Op>, &run_vectorized_mr<T, Op>},  // kVectorized
    {&run_parallel_mp<T, Op>, &run_parallel_mr<T, Op>},      // kParallel
    {&run_sort_based_mp<T, Op>, &run_sort_based_mr<T, Op>},  // kSortBased
    {&run_chunked_mp<T, Op>, &run_chunked_mr<T, Op>},        // kChunked
}};

}  // namespace detail

template <class T, class Op>
  requires AssociativeOp<Op, T>
void Engine::multiprefix_into(std::span<const T> values, std::span<const label_t> labels,
                              std::span<T> prefix, std::span<T> reduction, Op op,
                              Strategy strategy, const RunContext& ctx) {
  require_valid_inputs(values.size(), labels, reduction.size());
  MP_REQUIRE(prefix.size() == values.size(), "prefix output size mismatch");
  if (values.empty()) {  // nothing to sweep: the into contract is identity fills
    simd::fill(reduction, op.template identity<T>());
    return;
  }
  const Strategy s = resolved(strategy, labels, reduction.size());
  count_run(s);
  governed_dispatch(s, values.size(), reduction.size(), sizeof(T), ctx,
                    [&](Strategy stage, const RunContext* rc) {
                      detail::kStrategyRegistry<T, Op>[strategy_index(stage)].run_multiprefix(
                          *this, values, labels, prefix, reduction, op, rc);
                    });
}

template <class T, class Op>
  requires AssociativeOp<Op, T>
void Engine::multireduce_into(std::span<const T> values, std::span<const label_t> labels,
                              std::span<T> reduction, Op op, Strategy strategy,
                              const RunContext& ctx) {
  require_valid_inputs(values.size(), labels, reduction.size());
  if (values.empty()) {
    simd::fill(reduction, op.template identity<T>());
    return;
  }
  const Strategy s = resolved(strategy, labels, reduction.size());
  count_run(s);
  governed_dispatch(s, values.size(), reduction.size(), sizeof(T), ctx,
                    [&](Strategy stage, const RunContext* rc) {
                      detail::kStrategyRegistry<T, Op>[strategy_index(stage)].run_multireduce(
                          *this, values, labels, reduction, op, rc);
                    });
}

namespace detail {

/// Shared argument checks of the batched entry points: bounds must describe
/// a complete, contiguous, non-overlapping cover of [0, n).
inline void require_valid_batch_bounds(std::span<const std::size_t> bounds, std::size_t n) {
  MP_REQUIRE(bounds.size() >= 2, "batch bounds need at least two entries");
  MP_REQUIRE(bounds.front() == 0 && bounds.back() == n,
             "batch bounds must cover [0, n) exactly");
  for (std::size_t b = 1; b < bounds.size(); ++b)
    MP_REQUIRE(bounds[b - 1] <= bounds[b], "batch bounds must be non-decreasing");
}

}  // namespace detail

template <class T, class Op>
  requires AssociativeOp<Op, T>
void Engine::multiprefix_batched_into(std::span<const T> values,
                                      std::span<const label_t> labels,
                                      std::span<const std::size_t> bounds, std::span<T> prefix,
                                      std::span<T> reduction, Op op, const RunContext& ctx) {
  require_valid_inputs(values.size(), labels, reduction.size());
  MP_REQUIRE(prefix.size() == values.size(), "prefix output size mismatch");
  detail::require_valid_batch_bounds(bounds, values.size());
  if (values.empty()) {
    simd::fill(reduction, op.template identity<T>());
    return;
  }
  count_run(Strategy::kSerial);
  governed_dispatch(Strategy::kSerial, values.size(), reduction.size(), sizeof(T), ctx,
                    [&](Strategy, const RunContext* rc) {
                      // The reduction array doubles as the shared bucket
                      // cells: each request sweeps only its own class range,
                      // leaving its per-class totals behind — exactly the
                      // serial sweep's state, batch-wide.
                      simd::fill(reduction, op.template identity<T>());
                      simd::banded_bucket_sweep<T, Op>(values.data(), labels.data(),
                                                       bounds.data(), bounds.size() - 1,
                                                       reduction.data(), /*bucket_stride=*/0,
                                                       prefix.data(), op, rc);
                    });
}

template <class T, class Op>
  requires AssociativeOp<Op, T>
void Engine::multireduce_batched_into(std::span<const T> values,
                                      std::span<const label_t> labels,
                                      std::span<const std::size_t> bounds,
                                      std::span<T> reduction, Op op, const RunContext& ctx) {
  require_valid_inputs(values.size(), labels, reduction.size());
  detail::require_valid_batch_bounds(bounds, values.size());
  if (values.empty()) {
    simd::fill(reduction, op.template identity<T>());
    return;
  }
  count_run(Strategy::kSerial);
  governed_dispatch(Strategy::kSerial, values.size(), reduction.size(), sizeof(T), ctx,
                    [&](Strategy, const RunContext* rc) {
                      simd::fill(reduction, op.template identity<T>());
                      simd::banded_bucket_accumulate<T, Op>(
                          values.data(), labels.data(), bounds.data(), bounds.size() - 1,
                          reduction.data(), /*bucket_stride=*/0, op, rc);
                    });
}

}  // namespace mp
