// Serial reference multiprefix (paper Figure 2, generalized to any operator).
//
// This is the specification all parallel/vectorized implementations are
// tested against. It follows the paper's bucket-sweep exactly, including the
// trick of clearing only the buckets actually referenced by labels, so its
// running time is O(n) independent of m (at the cost of touching labels
// twice). `multiprefix_serial` additionally materializes the full m-sized
// reduction vector, which costs O(m) — use the `_into` form with a
// caller-managed buffer to amortize that in loops.
#pragma once

#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/labels.hpp"
#include "common/run_context.hpp"
#include "core/ops.hpp"
#include "core/result.hpp"
#include "obs/trace.hpp"
#include "simd/kernels.hpp"

namespace mp {

/// Core serial sweep: prefix[i] and reduction[k] are written in place.
/// `reduction` must have size m and already be filled with the identity.
template <class T, class Op>
  requires AssociativeOp<Op, T>
void multiprefix_serial_into(std::span<const T> values, std::span<const label_t> labels,
                             std::span<T> prefix, std::span<T> reduction, Op op = {},
                             const RunContext* rc = nullptr) {
  MP_REQUIRE(values.size() == labels.size(), "values/labels size mismatch");
  MP_REQUIRE(prefix.size() == values.size(), "prefix output size mismatch");
  const std::size_t n = values.size();
  const std::size_t m = reduction.size();
  const T id = op.template identity<T>();

  // One vectorized range check up front (the engine facade has already
  // validated labels; this guards direct callers), then the Figure 2
  // initialization — clear only the buckets referenced by labels — runs
  // branch-free.
  if (!labels.empty()) MP_REQUIRE(simd::max_label(labels) < m, "label out of range");
  obs::ScopedSpan span(obs::sink_for(rc), obs::Phase::kSweep);
  for (const label_t l : labels) reduction[l] = id;
  // Main sweep: save the running bucket value, then fold in the element.
  // Governed runs checkpoint at kCancelCheckBlock boundaries — between
  // elements, so no bucket is ever left mid-combine.
  std::size_t i = 0;
  while (i < n) {
    checkpoint(rc);
    const std::size_t stop =
        rc != nullptr && n - i > kCancelCheckBlock ? i + kCancelCheckBlock : n;
    for (; i < stop; ++i) {
      T& bucket = reduction[labels[i]];
      prefix[i] = bucket;
      bucket = op(bucket, values[i]);
    }
  }
}

template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
MultiprefixResult<T> multiprefix_serial(std::span<const T> values,
                                        std::span<const label_t> labels, std::size_t m,
                                        Op op = {}) {
  MultiprefixResult<T> out(values.size(), m, op.template identity<T>());
  multiprefix_serial_into<T, Op>(values, labels, std::span<T>(out.prefix),
                                 std::span<T>(out.reduction), op);
  return out;
}

/// Multireduce: reduction values only (paper §4.2). Serially this is a plain
/// histogram/"vector update" loop.
template <class T, class Op>
  requires AssociativeOp<Op, T>
void multireduce_serial_into(std::span<const T> values, std::span<const label_t> labels,
                             std::span<T> reduction, Op op = {},
                             const RunContext* rc = nullptr) {
  MP_REQUIRE(values.size() == labels.size(), "values/labels size mismatch");
  const std::size_t n = values.size();
  const std::size_t m = reduction.size();
  const T id = op.template identity<T>();
  if (!labels.empty()) MP_REQUIRE(simd::max_label(labels) < m, "label out of range");
  obs::ScopedSpan span(obs::sink_for(rc), obs::Phase::kSweep);
  for (const label_t l : labels) reduction[l] = id;
  std::size_t i = 0;
  while (i < n) {
    checkpoint(rc);
    const std::size_t stop =
        rc != nullptr && n - i > kCancelCheckBlock ? i + kCancelCheckBlock : n;
    for (; i < stop; ++i) {
      T& bucket = reduction[labels[i]];
      bucket = op(bucket, values[i]);
    }
  }
}

template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
std::vector<T> multireduce_serial(std::span<const T> values, std::span<const label_t> labels,
                                  std::size_t m, Op op = {}) {
  std::vector<T> reduction(m, op.template identity<T>());
  multireduce_serial_into<T, Op>(values, labels, std::span<T>(reduction), op);
  return reduction;
}

}  // namespace mp
