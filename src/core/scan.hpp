// Prefix sums (scans) over contiguous vectors.
//
// The second multiprefix of the integer-sort algorithm (Figure 11) is the
// degenerate all-labels-equal case — a plain prefix sum. For the NAS
// benchmark the paper "resorted to the traditional 'partition method'"
// [HJ88] for this recurrence (§5.1.1): split the vector into blocks, reduce
// each block, scan the block totals, then scan each block with its offset.
// On a vector machine the block loops vectorize; on threads the blocks run
// in parallel. Both the serial recurrence and the partition method are
// provided, plus the multiprefix-as-scan route used by tests to demonstrate
// the degenerate-case equivalence.
//
// The `*_serial` recurrences are the scalar references; the dispatched
// entry points (inclusive_scan / exclusive_scan, and the block loops of the
// partition method) route through simd/kernels.hpp, whose scalar tier is the
// same recurrence — forcing SimdLevel::kScalar reproduces them exactly.
#pragma once

#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/run_context.hpp"
#include "core/ops.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "simd/kernels.hpp"

namespace mp {

/// In-place exclusive scan, serial recurrence. Returns the grand total.
template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
T exclusive_scan_serial(std::span<T> data, Op op = {}) {
  T acc = op.template identity<T>();
  for (auto& x : data) {
    const T next = op(acc, x);
    x = acc;
    acc = next;
  }
  return acc;
}

/// In-place inclusive scan, serial recurrence. Returns the grand total.
template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
T inclusive_scan_serial(std::span<T> data, Op op = {}) {
  T acc = op.template identity<T>();
  for (auto& x : data) {
    acc = op(acc, x);
    x = acc;
  }
  return acc;
}

/// In-place exclusive scan, SIMD-dispatched (simd/kernels.hpp: in-register
/// shift-and-combine tree + running carry). Returns the grand total.
template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
T exclusive_scan(std::span<T> data, Op op = {}) {
  return simd::exclusive_scan<T, Op>(data, op);
}

/// In-place inclusive scan, SIMD-dispatched. Returns the grand total.
template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
T inclusive_scan(std::span<T> data, Op op = {}) {
  return simd::inclusive_scan<T, Op>(data, op);
}

/// In-place exclusive scan by the partition method [HJ88] (§5.1.1):
///   1. partition into `blocks` near-equal blocks;
///   2. reduce each block (parallel);
///   3. exclusive-scan the block totals (serial, short);
///   4. exclusive-scan each block seeded with its offset (parallel).
/// Work 2n versus the serial method's n — the classic trade for parallelism.
/// Returns the grand total.
template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
T exclusive_scan_partition(std::span<T> data, ThreadPool& pool, Op op = {},
                           std::size_t blocks_hint = 0, const RunContext* rc = nullptr) {
  const std::size_t n = data.size();
  const T id = op.template identity<T>();
  if (n == 0) return id;

  const std::size_t blocks =
      blocks_hint != 0 ? blocks_hint : std::max<std::size_t>(1, pool.num_threads() * 4);
  const std::vector<std::size_t> bounds = partition_range(n, blocks);

  // Governance checkpoints sit at the method's own phase boundaries (each
  // block is one kernel sweep — the natural chunk).
  checkpoint(rc);

  // Single-thread schedule: the two phase loops below would stream the whole
  // vector twice, evicting each block between its reduce and its scan once n
  // outgrows the cache. With one lane there is no parallelism to stage for,
  // so fuse per block instead — reduce a block, then immediately re-scan it
  // while it is still cache-resident, carrying the running offset the same
  // way exclusive_scan_serial carries it across the totals array. Same
  // kernel calls, same block bounds, same seeds and the same combine order
  // as the staged schedule: bit-identical for every type, floats included.
  if (pool.num_threads() == 1) {
    T acc = id;
    for (std::size_t b = 0; b < blocks; ++b) {
      checkpoint(rc);
      std::span<T> block(data.data() + bounds[b], bounds[b + 1] - bounds[b]);
      const T total = simd::reduce<T, Op>(std::span<const T>(block), op);
      simd::exclusive_scan_seeded<T, Op>(block, acc, op);
      acc = op(acc, total);
    }
    return acc;
  }
  BudgetCharge scratch(rc, blocks * sizeof(T));
  std::vector<T> totals(blocks, id);
  parallel_for(
      pool, 0, blocks, /*grain=*/1,
      [&](std::size_t b) {
        checkpoint(rc);
        totals[b] = simd::reduce<T, Op>(
            std::span<const T>(data.data() + bounds[b], bounds[b + 1] - bounds[b]), op);
      },
      rc);

  const T grand_total = exclusive_scan_serial<T, Op>(totals, op);

  parallel_for(
      pool, 0, blocks, /*grain=*/1,
      [&](std::size_t b) {
        checkpoint(rc);
        simd::exclusive_scan_seeded<T, Op>(
            std::span<T>(data.data() + bounds[b], bounds[b + 1] - bounds[b]), totals[b], op);
      },
      rc);
  return grand_total;
}

}  // namespace mp
