// Grid shape selection for the spinetree algorithm (paper §2.2 and §4.4).
//
// The theoretical algorithm assumes n is a perfect square; the
// implementation may choose the row length and the number of rows
// independently as long as rows * row_len >= n, padding the tail (§2.2,
// §4.4). The paper derives the Cray-optimal row length p ≈ 0.75·√n from the
// Table 3 loop parameters and notes the total time is nearly insensitive to
// p around the optimum (<2% at n = 1000).
//
// On a memory-bank machine the row length should additionally avoid
// multiples of the number of banks / the bank cycle time; we keep the same
// hygiene by nudging the row length off powers of two, which on modern
// cache hardware avoids pathological set-associativity conflicts in the
// strided column sweeps.
#pragma once

#include <cstddef>

namespace mp {

struct RowShape {
  std::size_t row_len = 1;  // elements per row; also the column stride
  std::size_t rows = 1;     // number of rows

  std::size_t padded() const { return row_len * rows; }

  /// row_len = ceil(sqrt(n)), the theoretical √n × √n arrangement.
  static RowShape square(std::size_t n);

  /// row_len = factor · √n (clamped to [1, n]); rows = ceil(n / row_len).
  /// factor = 0.75 reproduces the paper's Cray-optimal skew.
  static RowShape with_factor(std::size_t n, double factor);

  /// Explicit row length (clamped to [1, max(n,1)]).
  static RowShape with_row_length(std::size_t n, std::size_t row_len);

  /// Default policy used by the library: square, nudged off powers of two.
  static RowShape auto_shape(std::size_t n);
};

/// Returns `len` adjusted to avoid being a multiple of a large power of two
/// (the modern analogue of avoiding memory-bank-count multiples, §4.4).
std::size_t avoid_pow2_stride(std::size_t len);

}  // namespace mp
