// Result container shared by every multiprefix implementation.
#pragma once

#include <cstddef>
#include <vector>

namespace mp {

/// Output of the multiprefix operation (paper §1):
///   prefix[i]    = op-sum of { values[j] : labels[j] == labels[i], j < i }
///                  (the identity element when no such j exists);
///   reduction[k] = op-sum of { values[j] : labels[j] == k }
///                  (the identity element for labels that never occur).
template <class T>
struct MultiprefixResult {
  std::vector<T> prefix;     // size n
  std::vector<T> reduction;  // size m

  MultiprefixResult() = default;
  MultiprefixResult(std::size_t n, std::size_t m, T init)
      : prefix(n, init), reduction(m, init) {}

  friend bool operator==(const MultiprefixResult&, const MultiprefixResult&) = default;
};

}  // namespace mp
