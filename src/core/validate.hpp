// Validation helpers used by the test suite.
//
// `multiprefix_bruteforce` computes the result directly from the problem
// statement (§1) — an O(n·max_load) double loop with no shared algorithmic
// machinery, so it can falsify both the serial reference and the parallel
// implementations independently.
//
// `check_spinetree_structure` verifies the paper's structural theorems on a
// concrete plan:
//   Theorem 1  — same parent ⇔ same label ∧ same row;
//   Corollary 1 — children of one parent occupy distinct columns;
//   Theorem 2  — at most one spine element per class per row;
//   Corollary 2 — each spine element has at most one spine-element child;
//   plus the tree-shape facts the phases rely on: every parent is either
//   the element's own bucket or an element of the same class in a strictly
//   higher row.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/labels.hpp"
#include "core/ops.hpp"
#include "core/result.hpp"
#include "core/spinetree_plan.hpp"

namespace mp {

/// Direct-from-definition multiprefix; O(n + m + Σ class² / …) — quadratic
/// in the worst case, for test sizes only.
template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
MultiprefixResult<T> multiprefix_bruteforce(std::span<const T> values,
                                            std::span<const label_t> labels, std::size_t m,
                                            Op op = {}) {
  const T id = op.template identity<T>();
  MultiprefixResult<T> out(values.size(), m, id);
  for (std::size_t i = 0; i < values.size(); ++i) {
    T acc = id;
    for (std::size_t j = 0; j < i; ++j)
      if (labels[j] == labels[i]) acc = op(acc, values[j]);
    out.prefix[i] = acc;
  }
  for (std::size_t i = 0; i < values.size(); ++i)
    out.reduction[labels[i]] = op(out.reduction[labels[i]], values[i]);
  return out;
}

/// Checks the structural theorems; returns std::nullopt on success or a
/// description of the first violated property.
inline std::optional<std::string> check_spinetree_structure(const SpinetreePlan& plan,
                                                            std::span<const label_t> labels) {
  const std::size_t n = plan.n();
  const std::size_t m = plan.m();
  if (labels.size() != n) return "label vector size does not match plan";

  // Tree shape: parents are the element's own bucket or a same-class element
  // in a strictly higher row.
  for (std::size_t e = 0; e < n; ++e) {
    const auto p = plan.parent_of_element(e);
    if (p < m) {
      if (p != labels[e]) return "element " + std::to_string(e) + " points to a foreign bucket";
    } else {
      const std::size_t pe = p - m;
      if (pe >= n) return "parent index out of range";
      if (labels[pe] != labels[e])
        return "element " + std::to_string(e) + " has a parent of a different class";
      if (plan.row_of(pe) <= plan.row_of(e))
        return "element " + std::to_string(e) + " has a parent not in a higher row";
      if (!plan.is_spine(pe)) return "parent not flagged as spine element";
    }
  }

  // Theorem 1 (⇐ direction is what the phases rely on): elements with the
  // same parent must share label and row; Corollary 1: distinct columns.
  {
    std::vector<std::vector<std::uint32_t>> children(m + n);
    for (std::size_t e = 0; e < n; ++e)
      children[plan.parent_of_element(e)].push_back(static_cast<std::uint32_t>(e));
    for (std::size_t p = 0; p < children.size(); ++p) {
      const auto& kids = children[p];
      for (std::size_t a = 1; a < kids.size(); ++a) {
        if (labels[kids[a]] != labels[kids[0]])
          return "siblings with different labels under parent " + std::to_string(p);
        if (plan.row_of(kids[a]) != plan.row_of(kids[0]))
          return "siblings in different rows under parent " + std::to_string(p);
        for (std::size_t b = 0; b < a; ++b)
          if (plan.col_of(kids[a]) == plan.col_of(kids[b]))
            return "siblings sharing a column under parent " + std::to_string(p);
      }
    }

    // Corollary 2: at most one spine-element child per parent.
    for (std::size_t p = 0; p < children.size(); ++p) {
      std::size_t spine_children = 0;
      for (const auto e : children[p])
        if (plan.is_spine(e)) ++spine_children;
      if (spine_children > 1)
        return "parent " + std::to_string(p) + " has multiple spine-element children";
    }

    // is_spine must equal "has children".
    for (std::size_t e = 0; e < n; ++e) {
      const bool has_children = !children[m + e].empty();
      if (has_children != plan.is_spine(e))
        return "is_spine flag mismatch at element " + std::to_string(e);
    }
  }

  // Theorem 2: at most one spine element per class per row.
  {
    std::vector<std::vector<label_t>> seen(plan.shape().rows);
    for (std::size_t e = 0; e < n; ++e) {
      if (!plan.is_spine(e)) continue;
      auto& row_seen = seen[plan.row_of(e)];
      for (const label_t l : row_seen)
        if (l == labels[e])
          return "two spine elements of class " + std::to_string(labels[e]) + " in row " +
                 std::to_string(plan.row_of(e));
      row_seen.push_back(labels[e]);
    }
  }

  return std::nullopt;
}

}  // namespace mp
