// Reusable typed scratch buffers — the zero-allocation substrate for
// repeated execution.
//
// Every spinetree execution needs rowsum/spinesum scratch of size m + n
// (the unpacked `spinerec` fields, Figure 9). The one-shot facade used to
// allocate and free that scratch on every call, which dominates the cost of
// serving repeated traffic once the plan itself is cached (§5.2.1). A
// Workspace is a pool of previously-used vectors, keyed by element type:
// executors acquire scratch on construction and release it on destruction,
// so a steady-state stream of same-sized calls performs no heap allocation
// at all (vector capacity survives the acquire/release round trip, and
// the executors' `assign` only writes within it).
//
// Not thread-safe by design — the engine keeps one Workspace per thread
// (Engine::thread_workspace), which also keeps buffers NUMA/cache warm.
// Retention is bounded: at most kMaxPooledPerType vectors are kept per
// element type; extra releases simply free their memory.
//
// Governance (common/run_context.hpp): a BudgetScope binds a RunContext to
// the workspace for the duration of one engine dispatch. While bound, every
// acquire charges its bytes against the context's byte budget — a request
// that does not fit throws MpError(kBudgetExceeded), which the engine
// converts into degradation to a lower-footprint strategy instead of an
// OOM. All charges are returned when the scope ends. Acquires also pass
// through the allocation-fault seam (parallel/fault_injector.hpp), so chaos
// tests can script std::bad_alloc here without exhausting the heap.
#pragma once

#include <any>
#include <cstddef>
#include <cstdint>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/run_context.hpp"
#include "obs/trace.hpp"
#include "parallel/fault_injector.hpp"

namespace mp {

class Workspace {
 public:
  /// Vectors retained per element type; releases beyond this deallocate.
  static constexpr std::size_t kMaxPooledPerType = 4;

  /// Usage counters (per-thread workspaces need no atomics).
  struct Stats {
    std::uint64_t acquires = 0;  // total acquire<T>() calls
    std::uint64_t reuses = 0;    // acquires served from the pool
    std::uint64_t releases = 0;  // vectors returned to the pool
  };

  /// Returns an empty vector with at least `capacity_hint` reserved,
  /// preferring a pooled buffer (whose larger capacity is kept).
  template <class T>
  std::vector<T> acquire(std::size_t capacity_hint) {
    ++stats_.acquires;
    const std::size_t bytes = capacity_hint * sizeof(T);
    notify_alloc(bytes);
    if (bound_ != nullptr) {
      if (Status st = bound_->charge(bytes); !st.is_ok()) throw MpError(std::move(st));
      charged_ += bytes;
    }
    // Attribute the scratch to the enclosing span (the tracer records the
    // per-span delta of this thread's charged-bytes counter).
    obs::note_bytes(obs::active_tracer(), bytes);
    std::vector<T> v;
    auto it = pools_.find(std::type_index(typeid(T)));
    if (it != pools_.end() && !it->second.empty()) {
      v = std::move(*std::any_cast<std::vector<T>>(&it->second.back()));
      it->second.pop_back();
      v.clear();
      ++stats_.reuses;
    }
    if (v.capacity() < capacity_hint) v.reserve(capacity_hint);
    return v;
  }

  /// Returns a buffer to the pool for later reuse (contents discarded).
  template <class T>
  void release(std::vector<T>&& v) {
    if (v.capacity() == 0) return;
    auto& pool = pools_[std::type_index(typeid(T))];
    if (pool.size() >= kMaxPooledPerType) return;  // bound retained memory
    ++stats_.releases;
    pool.emplace_back(std::move(v));
  }

  const Stats& stats() const { return stats_; }

  /// Frees every pooled buffer (stats are kept).
  void clear() { pools_.clear(); }

  /// Binds a RunContext's byte budget to this workspace for the scope's
  /// lifetime (see file comment). Nests: the previous binding (and its
  /// accounting) is restored on destruction. Null workspace or an
  /// unbudgeted context are no-ops.
  class BudgetScope {
   public:
    BudgetScope(Workspace* ws, const RunContext* rc) : ws_(ws) {
      if (ws_ == nullptr) return;
      prev_bound_ = ws_->bound_;
      prev_charged_ = ws_->charged_;
      ws_->bound_ = (rc != nullptr && rc->memory_governed()) ? rc : nullptr;
      ws_->charged_ = 0;
    }
    ~BudgetScope() {
      if (ws_ == nullptr) return;
      if (ws_->bound_ != nullptr) ws_->bound_->uncharge(ws_->charged_);
      ws_->bound_ = prev_bound_;
      ws_->charged_ = prev_charged_;
    }
    BudgetScope(const BudgetScope&) = delete;
    BudgetScope& operator=(const BudgetScope&) = delete;

   private:
    Workspace* ws_;
    const RunContext* prev_bound_ = nullptr;
    std::size_t prev_charged_ = 0;
  };

 private:
  std::unordered_map<std::type_index, std::vector<std::any>> pools_;
  Stats stats_;
  const RunContext* bound_ = nullptr;  // active BudgetScope's context
  std::size_t charged_ = 0;            // bytes charged under the active scope
};

}  // namespace mp
