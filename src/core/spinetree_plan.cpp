#include "core/spinetree_plan.hpp"

#include <atomic>
#include <limits>
#include <numeric>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "parallel/parallel_for.hpp"

namespace mp {

SpinetreePlan::SpinetreePlan(std::span<const label_t> labels, std::size_t m, RowShape shape,
                             const Options& options)
    : n_(labels.size()), m_(m), shape_(shape) {
  MP_REQUIRE(m >= 1, "need at least one bucket");
  MP_REQUIRE(static_cast<std::uint64_t>(m) + n_ <
                 std::numeric_limits<index_t>::max(),
             "combined index space exceeds 32 bits");
  MP_REQUIRE(shape_.row_len >= 1 && shape_.rows * shape_.row_len >= n_,
             "grid does not cover all elements");
  for (const label_t l : labels) MP_REQUIRE(l < m, "label out of range");

  spine_.resize(m_ + n_);
  is_spine_.assign(n_, 0);

  if (options.pool != nullptr && options.pool->num_threads() > 1) {
    build_parallel(labels, options);
  } else {
    build_serial(labels, options);
  }
  finalize(options);
}

void SpinetreePlan::build_serial(std::span<const label_t> labels, const Options& options) {
  vm::Tracer* tracer = options.tracer;

  // Initialization (Figure 3): every bucket's spine points to itself.
  for (std::size_t b = 0; b < m_; ++b) spine_[b] = static_cast<index_t>(b);
  if (tracer) tracer->record(vm::OpKind::kIota, m_);

  const std::size_t L = shape_.row_len;
  Xoshiro256 arb_rng(options.arbitration_seed);
  std::vector<index_t> order;  // shuffled overwrite order, when seeded

  // SPINETREE phase (Figure 4): rows from top to bottom. The compiler's loop
  // fission on the Cray (gather, then scatter) is written out explicitly.
  for (std::size_t r = shape_.rows; r-- > 0;) {
    const std::size_t lo = r * L;
    const std::size_t hi = lo + L < n_ ? lo + L : n_;
    if (lo >= hi) continue;

    // Gather: each element reads its bucket's current spine pointer. Element
    // cells and bucket cells are disjoint, so no temporary is needed.
    for (std::size_t i = lo; i < hi; ++i) spine_[m_ + i] = spine_[labels[i]];
    if (tracer) tracer->record(vm::OpKind::kGather, hi - lo);

    // Scatter (ARB): each element attempts to overwrite its bucket with its
    // own combined index; one arbitrary element per bucket per row wins.
    if (options.arbitration_seed == 0) {
      for (std::size_t i = lo; i < hi; ++i)
        spine_[labels[i]] = static_cast<index_t>(m_ + i);
    } else {
      order.resize(hi - lo);
      std::iota(order.begin(), order.end(), static_cast<index_t>(lo));
      for (std::size_t k = order.size(); k > 1; --k)
        std::swap(order[k - 1], order[arb_rng.below(k)]);
      for (const index_t i : order) spine_[labels[i]] = static_cast<index_t>(m_ + i);
    }
    if (tracer) tracer->record(vm::OpKind::kScatter, hi - lo);
  }
}

void SpinetreePlan::build_parallel(std::span<const label_t> labels, const Options& options) {
  ThreadPool& pool = *options.pool;
  vm::Tracer* tracer = options.tracer;

  parallel_for(pool, 0, m_, [&](std::size_t b) { spine_[b] = static_cast<index_t>(b); });
  if (tracer) tracer->record(vm::OpKind::kIota, m_);

  const std::size_t L = shape_.row_len;
  for (std::size_t r = shape_.rows; r-- > 0;) {
    const std::size_t lo = r * L;
    const std::size_t hi = lo + L < n_ ? lo + L : n_;
    if (lo >= hi) continue;

    // Gather half-step: reads buckets, writes element cells — conflict-free.
    parallel_for(pool, lo, hi, [&](std::size_t i) { spine_[m_ + i] = spine_[labels[i]]; });
    if (tracer) tracer->record(vm::OpKind::kGather, hi - lo);

    // Scatter half-step: racing relaxed atomic stores ARE the arbitrary
    // concurrent write — whichever store lands last wins, and the algorithm
    // is correct for every winner.
    parallel_for(pool, lo, hi, [&](std::size_t i) {
      std::atomic_ref<index_t> cell(spine_[labels[i]]);
      cell.store(static_cast<index_t>(m_ + i), std::memory_order_relaxed);
    });
    if (tracer) tracer->record(vm::OpKind::kScatter, hi - lo);
  }
}

void SpinetreePlan::finalize(const Options& options) {
  // An element is a spine element iff some element points at it.
  for (std::size_t i = 0; i < n_; ++i) {
    const index_t p = spine_[m_ + i];
    if (p >= m_) is_spine_[p - m_] = 1;
  }
  if (options.tracer) options.tracer->record(vm::OpKind::kScatter, n_);

  // Compressed spine: spine elements grouped by row, bottom to top — the
  // exact visit order of the SPINESUMS phase.
  spine_row_offsets_.assign(shape_.rows + 1, 0);
  std::size_t count = 0;
  for (std::size_t i = 0; i < n_; ++i) count += is_spine_[i];
  spine_rows_.reserve(count);
  const std::size_t L = shape_.row_len;
  for (std::size_t r = 0; r < shape_.rows; ++r) {
    spine_row_offsets_[r] = spine_rows_.size();
    const std::size_t lo = r * L;
    const std::size_t hi = lo + L < n_ ? lo + L : n_;
    for (std::size_t i = lo; i < hi; ++i)
      if (is_spine_[i]) spine_rows_.push_back(static_cast<index_t>(i));
  }
  spine_row_offsets_[shape_.rows] = spine_rows_.size();
}

}  // namespace mp
