// The strategy vocabulary of the execution engine, and the one metadata
// table that describes it.
//
// Every fact the library needs about a strategy — its wire name, whether it
// runs on the thread pool, whether it consumes a SpinetreePlan (and hence
// benefits from the plan cache), and which simpler substrate to fall back to
// when the machine underneath fails — lives in kStrategyInfo. to_string,
// parse_strategy and fallback_chain are all derived views of that table, and
// the engine's registry (core/engine.hpp) is indexed by it, so adding a
// strategy means adding exactly one row here and one registry entry there.
//
// kAuto is a request, not an implementation: the engine resolves it to a
// concrete strategy from (n, m, load factor, pool availability, plan-cache
// state) before dispatch — see Engine::resolve for the regime table.
//
// The SIMD kernel tier (simd/dispatch.hpp) is the *other* axis of dispatch,
// deliberately not a strategy: every row of this table routes its inner
// loops through the per-kernel function-pointer tables in simd/kernels.hpp,
// which select lane width by simd::active_level(). So kAuto resolution, the
// fallback chains and every direct strategy request all pick up the widest
// profitable kernels with zero call-site changes — degrading the strategy
// (e.g. kParallel → kVectorized → kSerial on pool failure) never forfeits
// vectorization, and pinning SimdLevel::kScalar recovers the exact pre-SIMD
// scalar recurrences on any strategy.
//
// Execution *regimes within* a strategy follow the same rule. kChunked's
// fused/banded layout (core/chunked.hpp: single-pass ROWSUMS+MULTISUMS,
// L2-tiled pass 2) and kSortBased's write-combining rank scatter are picked
// inside the strategy from (SIMD tier, element type, tracer attachment,
// remaining byte budget) — never by a new enum value here. That keeps the
// kAuto regime table, the wire names, and the fallback chains frozen while
// the regimes evolve; a regime must be bit-identical to its reference layout
// (or gated to the integer paths where it is), so nothing observable beyond
// speed depends on which one ran.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace mp {

enum class Strategy {
  kSerial,      // Figure 2 bucket sweep (the reference)
  kVectorized,  // spinetree, single thread, vector-style loops (paper §4)
  kParallel,    // spinetree, phase-parallel pardo on threads (paper §2.2)
  kSortBased,   // counting-sort + segmented scan (the prior-art baseline)
  kChunked,     // two-level chunked algorithm (coarse-grained spinetree)
  kAuto,        // resolved by the engine from the input regime (§4.3/Fig 10)
};

/// Number of concrete (dispatchable) strategies; kAuto is not one of them.
inline constexpr std::size_t kStrategyCount = 5;

struct StrategyInfo {
  Strategy id;
  const char* name;        // stable wire name (to_string / parse_strategy)
  bool needs_pool;         // executes work on ThreadPool lanes
  bool plan_based;         // consumes a SpinetreePlan (plan cache applies)
  Strategy fallback_next;  // next simpler substrate; == id means terminal
};

/// The single source of truth about strategies. Indexed by the enum value.
inline constexpr std::array<StrategyInfo, kStrategyCount + 1> kStrategyInfo = {{
    {Strategy::kSerial, "serial", false, false, Strategy::kSerial},
    {Strategy::kVectorized, "vectorized", false, true, Strategy::kSerial},
    {Strategy::kParallel, "parallel", true, true, Strategy::kVectorized},
    {Strategy::kSortBased, "sort-based", false, false, Strategy::kSerial},
    {Strategy::kChunked, "chunked", true, false, Strategy::kVectorized},
    {Strategy::kAuto, "auto", false, false, Strategy::kAuto},
}};

constexpr std::size_t strategy_index(Strategy s) { return static_cast<std::size_t>(s); }

constexpr const StrategyInfo& strategy_info(Strategy s) {
  return kStrategyInfo[strategy_index(s)];
}

constexpr const char* to_string(Strategy s) {
  return strategy_index(s) < kStrategyInfo.size() ? strategy_info(s).name : "unknown";
}

/// Inverse of to_string: accepts "serial", "vectorized", "parallel",
/// "sort-based", "chunked" and "auto"; nullopt for anything else.
inline std::optional<Strategy> parse_strategy(std::string_view name) {
  for (const StrategyInfo& info : kStrategyInfo)
    if (name == info.name) return info.id;
  return std::nullopt;
}

/// Inverse of strategy_index for integers that crossed a non-template
/// boundary (the C ABI passes strategies as plain ints). kStrategyCount
/// maps to kAuto — the C header exposes that value as MP_STRATEGY_AUTO —
/// and anything past it is nullopt rather than a table overrun.
constexpr std::optional<Strategy> strategy_from_index(int index) {
  if (index < 0 || index > static_cast<int>(kStrategyCount)) return std::nullopt;
  return kStrategyInfo[static_cast<std::size_t>(index)].id;
}

/// Upper-bound scratch footprint (bytes) of one run of a concrete strategy
/// on an (n, m) problem with `elem_size`-byte elements and `threads` pool
/// lanes. Used by the engine's budget governance (common/run_context.hpp)
/// to demote a strategy whose scratch cannot fit the run's byte budget
/// *before* allocating it. The estimates mirror the allocations each
/// strategy actually makes:
///   serial      — in-place Figure 2 sweep, no scratch;
///   vectorized/ — two (m+n) rowsum/spinesum vectors plus the plan's spine
///   parallel      array (uint32 per node; counted in case of a cache miss);
///   sort-based  — the order permutation + offsets/cursor (uint32 each);
///   chunked     — the threads × m local bucket matrix. The fused banded
///                 regime wants a ways× taller matrix but self-gates back to
///                 this reference footprint when a governed run's remaining
///                 budget cannot fit it (core/chunked.hpp), so this estimate
///                 stays the binding one for budget demotion.
inline constexpr std::size_t strategy_scratch_bytes(Strategy s, std::size_t n, std::size_t m,
                                                    std::size_t elem_size,
                                                    std::size_t threads) {
  switch (s) {
    case Strategy::kSerial: return 0;
    case Strategy::kVectorized:
    case Strategy::kParallel:
      return 2 * (m + n) * elem_size + (m + n) * sizeof(std::uint32_t);
    case Strategy::kSortBased:
      return n * sizeof(std::uint32_t) + 2 * (m + 1) * sizeof(std::uint32_t);
    case Strategy::kChunked: return threads * m * elem_size;
    default: return 0;
  }
}

/// Degradation order for a preferred strategy: the strategy itself followed
/// by its fallback_next links down to the terminal substrate (kSerial needs
/// the least machine and ends every chain). kAuto must be resolved to a
/// concrete strategy first (Engine::resolve); its chain is just {kAuto}.
inline std::vector<Strategy> fallback_chain(Strategy preferred) {
  std::vector<Strategy> chain;
  Strategy s = preferred;
  for (;;) {
    chain.push_back(s);
    const Strategy next = strategy_info(s).fallback_next;
    if (next == s) break;
    s = next;
  }
  return chain;
}

}  // namespace mp
