// The parallel primitives multiprefix subsumes (paper §1), implemented on
// top of it:
//
//   * segmented scan [Ble90]  — "a segmented-scan is simulated by
//     distributing the same label to each element in a segment and then
//     executing the multiprefix operation";
//   * combining send [Hil85]  — "provided directly by multiprefix, but only
//     the reduction values are used" (a multireduce whose labels are the
//     destination addresses);
//   * fetch-and-op [GLR81]    — the multiprefix sums *are* the fetched
//     values, made deterministic by vector order (the PRAM-level variant
//     lives in pram/plus_simulation.hpp);
//   * the β operation of CM-Lisp [SH86] — a combining send keyed by a
//     computed address vector.
//
// Segment boundaries may be given as head flags (1 at each segment start)
// or as explicit segment ids; flags are converted to ids with an inclusive
// scan, as in Blelloch's scan-vector model.
#pragma once

#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/labels.hpp"
#include "core/multiprefix.hpp"
#include "core/ops.hpp"

namespace mp {

/// Converts head flags (flags[i] != 0 marks the start of a segment; the
/// first element is always a segment start) to dense segment ids 0, 1, ...
/// Returns the ids; `num_segments` receives the segment count.
inline std::vector<label_t> segment_ids_from_flags(std::span<const std::uint8_t> flags,
                                                   std::size_t& num_segments) {
  std::vector<label_t> ids(flags.size());
  label_t current = 0;
  for (std::size_t i = 0; i < flags.size(); ++i) {
    if (i == 0 || flags[i] != 0) current = (i == 0) ? 0 : current + 1;
    ids[i] = current;
  }
  num_segments = flags.empty() ? 0 : static_cast<std::size_t>(current) + 1;
  return ids;
}

template <class T>
struct SegmentedScanResult {
  std::vector<T> scan;    // per-element exclusive scan within its segment
  std::vector<T> totals;  // per-segment reduction
};

/// Exclusive segmented scan from head flags, via multiprefix (§1).
template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
SegmentedScanResult<T> segmented_scan(std::span<const T> values,
                                      std::span<const std::uint8_t> head_flags, Op op = {},
                                      Strategy strategy = Strategy::kVectorized) {
  MP_REQUIRE(values.size() == head_flags.size(), "values/flags size mismatch");
  std::size_t segments = 0;
  const auto ids = segment_ids_from_flags(head_flags, segments);
  auto result = multiprefix<T, Op>(values, ids, std::max<std::size_t>(segments, 1), op,
                                   strategy);
  return {std::move(result.prefix), std::move(result.reduction)};
}

/// Inclusive segmented scan (each element includes itself).
template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
SegmentedScanResult<T> segmented_scan_inclusive(std::span<const T> values,
                                                std::span<const std::uint8_t> head_flags,
                                                Op op = {},
                                                Strategy strategy = Strategy::kVectorized) {
  auto out = segmented_scan<T, Op>(values, head_flags, op, strategy);
  for (std::size_t i = 0; i < values.size(); ++i) out.scan[i] = op(out.scan[i], values[i]);
  return out;
}

/// Combining send (the Connection Machine primitive, §1): each element sends
/// `values[i]` to mailbox `destinations[i]`; colliding messages combine
/// under `op`. Mailboxes nobody sends to hold the identity. This is exactly
/// a multireduce — "only the reduction values are used".
template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
std::vector<T> combining_send(std::span<const T> values,
                              std::span<const label_t> destinations, std::size_t num_mailboxes,
                              Op op = {}, Strategy strategy = Strategy::kVectorized) {
  return multireduce<T, Op>(values, destinations, num_mailboxes, op, strategy);
}

/// Deterministic fetch-and-op (the Ultracomputer primitive, §1): returns,
/// for each element, the op-sum of the *earlier* values sent to the same
/// cell, and replaces each touched cell of `memory` with its combined total.
/// Unlike hardware fetch-and-op, the evaluation order is vector order.
template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
std::vector<T> fetch_and_op(std::span<const T> values, std::span<const label_t> addresses,
                            std::span<T> memory, Op op = {},
                            Strategy strategy = Strategy::kVectorized) {
  MP_REQUIRE(values.size() == addresses.size(), "values/addresses size mismatch");
  auto result = multiprefix<T, Op>(values, addresses, memory.size(), op, strategy);
  std::vector<T> fetched(values.size());
  std::vector<std::uint8_t> touched(memory.size(), 0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    fetched[i] = op(memory[addresses[i]], result.prefix[i]);
    touched[addresses[i]] = 1;
  }
  for (std::size_t a = 0; a < memory.size(); ++a)
    if (touched[a]) memory[a] = op(memory[a], result.reduction[a]);
  return fetched;
}

}  // namespace mp
