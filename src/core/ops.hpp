// Binary associative operators for the general multiprefix operation.
//
// The paper (§1) defines multiprefix over "any binary associative operator"
// with the identity element substituted for 0 — typical operators being
// PLUS, MULT, MAX, MIN, AND and OR over INTEGER, FLOATING and BOOLEAN. This
// header provides those operators plus the concept the algorithms require.
//
// Contract: `op(a, b)` combines a value `a` that precedes `b` in vector
// order. All algorithms in this library preserve vector order, so operators
// need only be associative — commutativity is NOT required (tests exercise
// this with affine-function composition).
#pragma once

#include <concepts>
#include <limits>

namespace mp {

/// An associative combiner with a distinguished identity element for T.
/// Associativity itself cannot be checked by the compiler; the debug
/// validator (core/validate.hpp) spot-checks it on real data.
template <class Op, class T>
concept AssociativeOp = requires(const Op op, T a, T b) {
  { op(a, b) } -> std::convertible_to<T>;
  { op.template identity<T>() } -> std::convertible_to<T>;
};

struct Plus {
  template <class T>
  constexpr T identity() const {
    return T{};
  }
  template <class T>
  constexpr T operator()(T a, T b) const {
    return static_cast<T>(a + b);
  }
};

struct Times {
  template <class T>
  constexpr T identity() const {
    return T{1};
  }
  template <class T>
  constexpr T operator()(T a, T b) const {
    return static_cast<T>(a * b);
  }
};

struct Min {
  template <class T>
  constexpr T identity() const {
    return std::numeric_limits<T>::max();
  }
  template <class T>
  constexpr T operator()(T a, T b) const {
    return b < a ? b : a;
  }
};

struct Max {
  template <class T>
  constexpr T identity() const {
    return std::numeric_limits<T>::lowest();
  }
  template <class T>
  constexpr T operator()(T a, T b) const {
    return a < b ? b : a;
  }
};

/// Bitwise AND; identity is the all-ones pattern of T (integral T only).
struct BitAnd {
  template <class T>
  constexpr T identity() const {
    return static_cast<T>(~T{});
  }
  template <class T>
  constexpr T operator()(T a, T b) const {
    return static_cast<T>(a & b);
  }
};

struct BitOr {
  template <class T>
  constexpr T identity() const {
    return T{};
  }
  template <class T>
  constexpr T operator()(T a, T b) const {
    return static_cast<T>(a | b);
  }
};

/// Logical AND/OR over bool-like types (the paper's BOOLEAN operators).
struct LogicalAnd {
  template <class T>
  constexpr T identity() const {
    return T{1};
  }
  template <class T>
  constexpr T operator()(T a, T b) const {
    return static_cast<T>(a && b);
  }
};

struct LogicalOr {
  template <class T>
  constexpr T identity() const {
    return T{0};
  }
  template <class T>
  constexpr T operator()(T a, T b) const {
    return static_cast<T>(a || b);
  }
};

}  // namespace mp
