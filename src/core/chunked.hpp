// Chunked two-level multiprefix — the coarse-grained analogue of the
// spinetree for small processor counts.
//
// The spinetree generalizes naturally: with rows as wide as n/P, each of P
// "rows" (chunks) has exactly one accumulator per class — the local bucket —
// and the SPINESUMS recurrence degenerates into an exclusive scan across
// chunks per label. That is this algorithm:
//
//   pass 1 (parallel over chunks): each chunk runs the serial multiprefix
//          locally, writing local prefixes into the output and its local
//          class totals into a dense P × m bucket matrix;
//   pass 2 (parallel over labels): exclusive scan down each label's column
//          of the matrix, producing per-chunk starting offsets and the
//          global reductions;
//   pass 3 (parallel over chunks): prefix[i] = op(offset(chunk, label[i]),
//          local_prefix[i]) — earlier chunks combine on the left, so vector
//          order (and hence non-commutative operators) is preserved.
//
// Work O(n + P·m), space O(P·m). For P ≪ √n and m = O(n) this is the
// preferred threaded mapping on cache machines; the ablation bench compares
// it against the phase-parallel spinetree schedule.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/labels.hpp"
#include "common/run_context.hpp"
#include "core/ops.hpp"
#include "core/result.hpp"
#include "obs/trace.hpp"
#include "parallel/fault_injector.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "simd/kernels.hpp"

namespace mp {

/// Core chunked sweep writing into caller buffers; m = reduction.size().
/// Every reduction slot is written (identity for unreferenced classes).
template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
void multiprefix_chunked_into(std::span<const T> values, std::span<const label_t> labels,
                              std::span<T> prefix, std::span<T> reduction, ThreadPool& pool,
                              Op op = {}, std::size_t chunks_hint = 0,
                              const RunContext* rc = nullptr) {
  MP_REQUIRE(values.size() == labels.size(), "values/labels size mismatch");
  MP_REQUIRE(prefix.size() == values.size(), "prefix output size mismatch");
  const std::size_t n = values.size();
  const std::size_t m = reduction.size();
  const T id = op.template identity<T>();
  if (n == 0) {
    std::fill(reduction.begin(), reduction.end(), id);
    return;
  }

  const std::size_t chunks = chunks_hint != 0 ? chunks_hint : pool.num_threads();
  const std::vector<std::size_t> bounds = partition_range(n, chunks);
  obs::Tracer* obs_tracer = obs::sink_for(rc);  // null = all spans inert
  // Pass-2 kernel tier, picked once at dispatch time for the matrix height
  // (512-bit column batches lose on the strided walk — see
  // simd::column_kernel_level).
  const simd::SimdLevel col_level = simd::column_kernel_level(simd::active_level(), chunks);

  // chunk-major P × m matrix of local class totals — the algorithm's whole
  // scratch footprint, charged against the run's byte budget (and exposed
  // to the allocation-fault seam) before the allocation happens.
  BudgetCharge scratch(rc, chunks * m * sizeof(T));
  notify_alloc(chunks * m * sizeof(T));
  obs::note_bytes(obs_tracer, chunks * m * sizeof(T));
  std::vector<T> local(chunks * m, id);

  // Pass 1: local multiprefix per chunk. Labels are range-checked once per
  // chunk up front (one vectorized max sweep) so the bucket loop is
  // branch-free. Governed runs checkpoint every kCancelCheckBlock elements
  // inside each lane's chunk walk (chunk boundaries are the safe points: no
  // bucket is mid-combine between elements). The chunked passes are the
  // coarse-grained spinetree phases: pass 1 is ROWSUMS with rows of width
  // n/P, pass 2 the SPINESUMS recurrence, pass 3 MULTISUMS.
  {
    obs::ScopedSpan span(obs_tracer, obs::Phase::kRowsums);
    pool.run(
        [&](std::size_t lane) {
          for (std::size_t ch = lane; ch < chunks; ch += pool.num_threads()) {
            const std::size_t len = bounds[ch + 1] - bounds[ch];
            if (len == 0) continue;
            MP_REQUIRE(simd::max_label(labels.subspan(bounds[ch], len)) < m,
                       "label out of range");
            T* bucket = local.data() + ch * m;
            std::size_t i = bounds[ch];
            while (i < bounds[ch + 1]) {
              checkpoint(rc);
              const std::size_t stop = rc != nullptr && bounds[ch + 1] - i > kCancelCheckBlock
                                           ? i + kCancelCheckBlock
                                           : bounds[ch + 1];
              for (; i < stop; ++i) {
                T& cell = bucket[labels[i]];
                prefix[i] = cell;
                cell = op(cell, values[i]);
              }
            }
          }
        },
        rc);
  }

  // Pass 2: exclusive scan across chunks for every label; the total becomes
  // the reduction. After this, local[ch*m + k] holds the op-sum of class k
  // over all chunks *before* ch. Adjacent labels are adjacent columns of the
  // chunk-major matrix, so the kernel scans a register-width of labels per
  // step with contiguous loads; each column's combine order is untouched
  // (bit-identical for floats too).
  {
    obs::ScopedSpan span(obs_tracer, obs::Phase::kSpinesums);
    parallel_for_blocked(
        pool, 0, m, /*grain=*/256,
        [&](std::size_t k0, std::size_t k1) {
          simd::column_exclusive_scan<T, Op>(local.data(), chunks, m, k0, k1,
                                             reduction.data(), op, col_level);
        },
        rc);
  }

  // Pass 3: combine the chunk offset on the left of each local prefix.
  {
    obs::ScopedSpan span(obs_tracer, obs::Phase::kMultisums);
    pool.run(
        [&](std::size_t lane) {
          for (std::size_t ch = lane; ch < chunks; ch += pool.num_threads()) {
            const T* offset = local.data() + ch * m;
            std::size_t i = bounds[ch];
            while (i < bounds[ch + 1]) {
              checkpoint(rc);
              const std::size_t stop = rc != nullptr && bounds[ch + 1] - i > kCancelCheckBlock
                                           ? i + kCancelCheckBlock
                                           : bounds[ch + 1];
              for (; i < stop; ++i) prefix[i] = op(offset[labels[i]], prefix[i]);
            }
          }
        },
        rc);
  }
}

template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
MultiprefixResult<T> multiprefix_chunked(std::span<const T> values,
                                         std::span<const label_t> labels, std::size_t m,
                                         ThreadPool& pool, Op op = {},
                                         std::size_t chunks_hint = 0,
                                         const RunContext* rc = nullptr) {
  MultiprefixResult<T> out(values.size(), m, op.template identity<T>());
  multiprefix_chunked_into<T, Op>(values, labels, std::span<T>(out.prefix),
                                  std::span<T>(out.reduction), pool, op, chunks_hint, rc);
  return out;
}

template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
void multireduce_chunked_into(std::span<const T> values, std::span<const label_t> labels,
                              std::span<T> reduction, ThreadPool& pool, Op op = {},
                              std::size_t chunks_hint = 0, const RunContext* rc = nullptr) {
  MP_REQUIRE(values.size() == labels.size(), "values/labels size mismatch");
  const std::size_t n = values.size();
  const std::size_t m = reduction.size();
  const T id = op.template identity<T>();
  if (n == 0) {
    std::fill(reduction.begin(), reduction.end(), id);
    return;
  }

  const std::size_t chunks = chunks_hint != 0 ? chunks_hint : pool.num_threads();
  const std::vector<std::size_t> bounds = partition_range(n, chunks);
  obs::Tracer* obs_tracer = obs::sink_for(rc);
  const simd::SimdLevel col_level = simd::column_kernel_level(simd::active_level(), chunks);
  BudgetCharge scratch(rc, chunks * m * sizeof(T));
  notify_alloc(chunks * m * sizeof(T));
  obs::note_bytes(obs_tracer, chunks * m * sizeof(T));
  std::vector<T> local(chunks * m, id);

  {
    obs::ScopedSpan span(obs_tracer, obs::Phase::kRowsums);
    pool.run(
        [&](std::size_t lane) {
          for (std::size_t ch = lane; ch < chunks; ch += pool.num_threads()) {
            const std::size_t len = bounds[ch + 1] - bounds[ch];
            if (len == 0) continue;
            MP_REQUIRE(simd::max_label(labels.subspan(bounds[ch], len)) < m,
                       "label out of range");
            T* bucket = local.data() + ch * m;
            std::size_t i = bounds[ch];
            while (i < bounds[ch + 1]) {
              checkpoint(rc);
              const std::size_t stop = rc != nullptr && bounds[ch + 1] - i > kCancelCheckBlock
                                           ? i + kCancelCheckBlock
                                           : bounds[ch + 1];
              for (; i < stop; ++i) bucket[labels[i]] = op(bucket[labels[i]], values[i]);
            }
          }
        },
        rc);
  }

  {
    obs::ScopedSpan span(obs_tracer, obs::Phase::kSpinesums);
    parallel_for_blocked(
        pool, 0, m, /*grain=*/256,
        [&](std::size_t k0, std::size_t k1) {
          simd::column_reduce<T, Op>(local.data(), chunks, m, k0, k1, reduction.data(), op,
                                     col_level);
        },
        rc);
  }
}

template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
std::vector<T> multireduce_chunked(std::span<const T> values, std::span<const label_t> labels,
                                   std::size_t m, ThreadPool& pool, Op op = {},
                                   std::size_t chunks_hint = 0,
                                   const RunContext* rc = nullptr) {
  std::vector<T> reduction(m, op.template identity<T>());
  multireduce_chunked_into<T, Op>(values, labels, std::span<T>(reduction), pool, op,
                                  chunks_hint, rc);
  return reduction;
}

}  // namespace mp
