// Chunked two-level multiprefix — the coarse-grained analogue of the
// spinetree for small processor counts.
//
// The spinetree generalizes naturally: with rows as wide as n/P, each of P
// "rows" (chunks) has exactly one accumulator per class — the local bucket —
// and the SPINESUMS recurrence degenerates into an exclusive scan across
// chunks per label. That is this algorithm:
//
//   pass 1 (parallel over chunks): each chunk runs the serial multiprefix
//          locally, writing local prefixes into the output and its local
//          class totals into a dense P × m bucket matrix;
//   pass 2 (parallel over labels): exclusive scan down each label's column
//          of the matrix, producing per-chunk starting offsets and the
//          global reductions;
//   pass 3 (parallel over chunks): prefix[i] = op(offset(chunk, label[i]),
//          local_prefix[i]) — earlier chunks combine on the left, so vector
//          order (and hence non-commutative operators) is preserved.
//
// Work O(n + P·m), space O(P·m). For P ≪ √n and m = O(n) this is the
// preferred threaded mapping on cache machines; the ablation bench compares
// it against the phase-parallel spinetree schedule.
//
// Fused regime (Zhang/Wang/Ross-style, ROADMAP open item 2). The reference
// passes above stream the element vectors three times and their bucket loop
// is serialized by the store-to-load forwarding chain on repeated labels.
// When (a) no tracer is attached (the three phase spans above are the
// tracer's vocabulary — fusing would erase them), (b) T is integral (the
// fused fold reassociates the per-chunk combine, exact only under
// two's-complement arithmetic), and (c) the active SIMD tier is a vector
// tier (the scalar tier must stay byte-for-byte the reference), the passes
// restructure as:
//
//   pass A  ROWSUMS only: each chunk splits into sweep_band_factor()
//           contiguous bands with private bucket rows, accumulated by the
//           interleaved banded kernel — a run of equal labels advances four
//           independent forwarding chains instead of one (lanes refill from
//           the remaining bands), and no local prefix is written
//           (that store stream is deferred to pass C, halving the
//           element-vector traffic of pass 1 + pass 3 combined);
//   pass B  SPINESUMS down the (P·ways) × m matrix, walked in label tiles
//           sized to l2_tile_bytes() so a tall matrix stops thrashing L2
//           (the tiling is pure blocking — bit-identical for every type —
//           and applies to the reference regime too);
//   pass C  ROWSUMS+MULTISUMS fused: the banded sweep re-runs seeded with
//           the pass-B offsets already sitting in each band's bucket row, so
//           prefix[i] is written once, final — no read-modify-write of the
//           output vector.
//
// A memory-governed run self-gates: the fused matrix is ways× taller, so if
// it does not fit the remaining byte budget the run falls back to the
// reference layout, keeping the strategy's advertised scratch cost
// (strategy_scratch_bytes, P·m·sizeof(T)) the binding one.
#pragma once

#include <algorithm>
#include <span>
#include <type_traits>
#include <vector>

#include "common/assert.hpp"
#include "common/labels.hpp"
#include "common/run_context.hpp"
#include "core/ops.hpp"
#include "core/result.hpp"
#include "obs/trace.hpp"
#include "parallel/fault_injector.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "simd/kernels.hpp"

namespace mp {

namespace detail {

/// Bands per chunk for this run: sweep_band_factor() when the fused banded
/// regime may engage (untraced, integral element, vector tier), gated down
/// to 1 — the reference layout — when the taller matrix would blow a
/// governed run's remaining byte budget.
template <class T>
std::size_t chunked_ways(const obs::Tracer* obs_tracer, std::size_t chunks, std::size_t m,
                         const RunContext* rc) {
  if (obs_tracer != nullptr || !std::is_integral_v<T>) return 1;
  const std::size_t ways = simd::sweep_band_factor(simd::active_level());
  if (ways > 1 && rc != nullptr && rc->memory_governed() &&
      chunks * ways * m * sizeof(T) > rc->remaining_bytes())
    return 1;
  return ways;
}

}  // namespace detail

/// Core chunked sweep writing into caller buffers; m = reduction.size().
/// Every reduction slot is written (identity for unreferenced classes).
template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
void multiprefix_chunked_into(std::span<const T> values, std::span<const label_t> labels,
                              std::span<T> prefix, std::span<T> reduction, ThreadPool& pool,
                              Op op = {}, std::size_t chunks_hint = 0,
                              const RunContext* rc = nullptr) {
  MP_REQUIRE(values.size() == labels.size(), "values/labels size mismatch");
  MP_REQUIRE(prefix.size() == values.size(), "prefix output size mismatch");
  const std::size_t n = values.size();
  const std::size_t m = reduction.size();
  const T id = op.template identity<T>();
  if (n == 0) {
    std::fill(reduction.begin(), reduction.end(), id);
    return;
  }

  const std::size_t chunks = chunks_hint != 0 ? chunks_hint : pool.num_threads();
  obs::Tracer* obs_tracer = obs::sink_for(rc);  // null = all spans inert
  const simd::SimdLevel level = simd::active_level();
  const std::size_t ways = detail::chunked_ways<T>(obs_tracer, chunks, m, rc);
  const bool fused = ways > 1;
  const std::size_t rows = chunks * ways;
  const std::vector<std::size_t> bounds = partition_range(n, rows);
  // Pass-2 kernel tier, picked once at dispatch time for the matrix height
  // (512-bit column batches lose on the strided walk — see
  // simd::column_kernel_level).
  const simd::SimdLevel col_level = simd::column_kernel_level(level, rows);

  // chunk-major rows × m matrix of local class totals — the algorithm's
  // whole scratch footprint, charged against the run's byte budget (and
  // exposed to the allocation-fault seam) before the allocation happens.
  // rows == chunks in the reference regime; the fused regime's taller
  // matrix is budget-gated in detail::chunked_ways.
  BudgetCharge scratch(rc, rows * m * sizeof(T));
  notify_alloc(rows * m * sizeof(T));
  obs::note_bytes(obs_tracer, rows * m * sizeof(T));
  std::vector<T> local(rows * m, id);

  // Pass 1: local multiprefix per chunk. Labels are range-checked once per
  // chunk up front (one vectorized max sweep) so the bucket loop is
  // branch-free. Governed runs checkpoint every kCancelCheckBlock elements
  // inside each lane's chunk walk (chunk boundaries are the safe points: no
  // bucket is mid-combine between elements). The chunked passes are the
  // coarse-grained spinetree phases: pass 1 is ROWSUMS with rows of width
  // n/P, pass 2 the SPINESUMS recurrence, pass 3 MULTISUMS. In the fused
  // regime pass 1 is accumulate-only (pass A of the header comment): the
  // local prefixes are recomputed during the seeded pass-3 sweep instead of
  // stored here, and each chunk's `ways` bands interleave through the
  // banded kernel.
  {
    obs::ScopedSpan span(obs_tracer, obs::Phase::kRowsums);
    pool.run(
        [&](std::size_t lane) {
          for (std::size_t ch = lane; ch < chunks; ch += pool.num_threads()) {
            const std::size_t b0 = ch * ways;
            const std::size_t len = bounds[b0 + ways] - bounds[b0];
            if (len == 0) continue;
            MP_REQUIRE(simd::max_label(labels.subspan(bounds[b0], len)) < m,
                       "label out of range");
            if (fused) {
              simd::banded_bucket_accumulate<T, Op>(values.data(), labels.data(),
                                                    bounds.data() + b0, ways,
                                                    local.data() + b0 * m, m, op, rc, level);
              continue;
            }
            T* bucket = local.data() + b0 * m;
            std::size_t i = bounds[b0];
            while (i < bounds[b0 + 1]) {
              checkpoint(rc);
              const std::size_t stop = rc != nullptr && bounds[b0 + 1] - i > kCancelCheckBlock
                                           ? i + kCancelCheckBlock
                                           : bounds[b0 + 1];
              for (; i < stop; ++i) {
                T& cell = bucket[labels[i]];
                prefix[i] = cell;
                cell = op(cell, values[i]);
              }
            }
          }
        },
        rc);
  }

  // Pass 2: exclusive scan across chunks for every label; the total becomes
  // the reduction. After this, local[b*m + k] holds the op-sum of class k
  // over all bands *before* b. Adjacent labels are adjacent columns of the
  // chunk-major matrix, so the kernel scans a register-width of labels per
  // step with contiguous loads; each column's combine order is untouched
  // (bit-identical for floats too). The column walk is blocked into label
  // tiles whose rows-deep working set fits l2_tile_bytes() — pure blocking,
  // every tile boundary computes identical results.
  {
    obs::ScopedSpan span(obs_tracer, obs::Phase::kSpinesums);
    const std::size_t tile = simd::l2_tile_cols(rows, sizeof(T));
    parallel_for_blocked(
        pool, 0, m, /*grain=*/256,
        [&](std::size_t k0, std::size_t k1) {
          for (std::size_t t0 = k0; t0 < k1; t0 += tile)
            simd::column_exclusive_scan<T, Op>(local.data(), rows, m, t0,
                                               std::min(k1, t0 + tile), reduction.data(), op,
                                               col_level);
        },
        rc);
  }

  // Pass 3: combine the chunk offset on the left of each local prefix. The
  // fused regime instead re-sweeps the element vectors seeded with the
  // pass-2 offsets (each band's bucket row already holds them), writing
  // every prefix slot exactly once.
  {
    obs::ScopedSpan span(obs_tracer, obs::Phase::kMultisums);
    pool.run(
        [&](std::size_t lane) {
          for (std::size_t ch = lane; ch < chunks; ch += pool.num_threads()) {
            const std::size_t b0 = ch * ways;
            if (fused) {
              simd::banded_bucket_sweep<T, Op>(values.data(), labels.data(),
                                               bounds.data() + b0, ways, local.data() + b0 * m,
                                               m, prefix.data(), op, rc, level);
              continue;
            }
            const T* offset = local.data() + b0 * m;
            std::size_t i = bounds[b0];
            while (i < bounds[b0 + 1]) {
              checkpoint(rc);
              const std::size_t stop = rc != nullptr && bounds[b0 + 1] - i > kCancelCheckBlock
                                           ? i + kCancelCheckBlock
                                           : bounds[b0 + 1];
              for (; i < stop; ++i) prefix[i] = op(offset[labels[i]], prefix[i]);
            }
          }
        },
        rc);
  }
}

template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
MultiprefixResult<T> multiprefix_chunked(std::span<const T> values,
                                         std::span<const label_t> labels, std::size_t m,
                                         ThreadPool& pool, Op op = {},
                                         std::size_t chunks_hint = 0,
                                         const RunContext* rc = nullptr) {
  MultiprefixResult<T> out(values.size(), m, op.template identity<T>());
  multiprefix_chunked_into<T, Op>(values, labels, std::span<T>(out.prefix),
                                  std::span<T>(out.reduction), pool, op, chunks_hint, rc);
  return out;
}

template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
void multireduce_chunked_into(std::span<const T> values, std::span<const label_t> labels,
                              std::span<T> reduction, ThreadPool& pool, Op op = {},
                              std::size_t chunks_hint = 0, const RunContext* rc = nullptr) {
  MP_REQUIRE(values.size() == labels.size(), "values/labels size mismatch");
  const std::size_t n = values.size();
  const std::size_t m = reduction.size();
  const T id = op.template identity<T>();
  if (n == 0) {
    std::fill(reduction.begin(), reduction.end(), id);
    return;
  }

  const std::size_t chunks = chunks_hint != 0 ? chunks_hint : pool.num_threads();
  obs::Tracer* obs_tracer = obs::sink_for(rc);
  const simd::SimdLevel level = simd::active_level();
  // Same banded regime as the multiprefix form: more, narrower bands whose
  // sweeps interleave. Only the cross-band combine in pass 2 is
  // reassociated, hence the same integral-only gate.
  const std::size_t ways = detail::chunked_ways<T>(obs_tracer, chunks, m, rc);
  const bool banded = ways > 1;
  const std::size_t rows = chunks * ways;
  const std::vector<std::size_t> bounds = partition_range(n, rows);
  const simd::SimdLevel col_level = simd::column_kernel_level(level, rows);
  BudgetCharge scratch(rc, rows * m * sizeof(T));
  notify_alloc(rows * m * sizeof(T));
  obs::note_bytes(obs_tracer, rows * m * sizeof(T));
  std::vector<T> local(rows * m, id);

  {
    obs::ScopedSpan span(obs_tracer, obs::Phase::kRowsums);
    pool.run(
        [&](std::size_t lane) {
          for (std::size_t ch = lane; ch < chunks; ch += pool.num_threads()) {
            const std::size_t b0 = ch * ways;
            const std::size_t len = bounds[b0 + ways] - bounds[b0];
            if (len == 0) continue;
            MP_REQUIRE(simd::max_label(labels.subspan(bounds[b0], len)) < m,
                       "label out of range");
            if (banded) {
              simd::banded_bucket_accumulate<T, Op>(values.data(), labels.data(),
                                                    bounds.data() + b0, ways,
                                                    local.data() + b0 * m, m, op, rc, level);
              continue;
            }
            T* bucket = local.data() + b0 * m;
            std::size_t i = bounds[b0];
            while (i < bounds[b0 + 1]) {
              checkpoint(rc);
              const std::size_t stop = rc != nullptr && bounds[b0 + 1] - i > kCancelCheckBlock
                                           ? i + kCancelCheckBlock
                                           : bounds[b0 + 1];
              for (; i < stop; ++i) bucket[labels[i]] = op(bucket[labels[i]], values[i]);
            }
          }
        },
        rc);
  }

  {
    obs::ScopedSpan span(obs_tracer, obs::Phase::kSpinesums);
    const std::size_t tile = simd::l2_tile_cols(rows, sizeof(T));
    parallel_for_blocked(
        pool, 0, m, /*grain=*/256,
        [&](std::size_t k0, std::size_t k1) {
          for (std::size_t t0 = k0; t0 < k1; t0 += tile)
            simd::column_reduce<T, Op>(local.data(), rows, m, t0, std::min(k1, t0 + tile),
                                       reduction.data(), op, col_level);
        },
        rc);
  }
}

template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
std::vector<T> multireduce_chunked(std::span<const T> values, std::span<const label_t> labels,
                                   std::size_t m, ThreadPool& pool, Op op = {},
                                   std::size_t chunks_hint = 0,
                                   const RunContext* rc = nullptr) {
  std::vector<T> reduction(m, op.template identity<T>());
  multireduce_chunked_into<T, Op>(values, labels, std::span<T>(reduction), pool, op,
                                  chunks_hint, rc);
  return reduction;
}

}  // namespace mp
