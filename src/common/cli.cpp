#include "common/cli.hpp"

#include <stdexcept>

namespace mp {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";
    }
  }
}

bool CliArgs::has(const std::string& name) const { return values_.count(name) != 0; }

std::string CliArgs::get(const std::string& name, const std::string& dflt) const {
  const auto it = values_.find(name);
  return it == values_.end() ? dflt : it->second;
}

std::int64_t CliArgs::get(const std::string& name, std::int64_t dflt) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  return std::stoll(it->second);
}

double CliArgs::get(const std::string& name, double dflt) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  return std::stod(it->second);
}

bool CliArgs::get(const std::string& name, bool dflt) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  if (it->second.empty() || it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  throw std::invalid_argument("bad boolean flag --" + name + "=" + it->second);
}

DType CliArgs::get(const std::string& name, DType dflt) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  if (const auto parsed = parse_dtype(it->second)) return *parsed;
  throw std::invalid_argument("bad dtype flag --" + name + "=" + it->second +
                              " (want int32/int64/float32/float64)");
}

OpKind CliArgs::get(const std::string& name, OpKind dflt) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  if (const auto parsed = parse_op_kind(it->second)) return *parsed;
  throw std::invalid_argument("bad op flag --" + name + "=" + it->second +
                              " (want plus/times/min/max)");
}

}  // namespace mp
