// Structured error taxonomy for the execution layer.
//
// The paper's algorithm is correct only under preconditions the code cannot
// express in the type system: every label must lie in [0, m), shapes must
// agree, and the machine underneath (thread pool, allocator) must not fail
// mid-phase. This header gives those failure modes names so callers can
// distinguish "your input is malformed" (kInvalidLabel / kShapeMismatch —
// retrying is pointless) from "the execution substrate failed"
// (kPoolFailure / kExecutionFault — a degraded strategy may still succeed;
// see core/resilient.hpp).
//
// `Status` is a cheap value type for in-band reporting; `MpError` wraps a
// Status into an exception for the throwing entry points. The facade in
// core/multiprefix.hpp validates with `validate_inputs` and throws MpError,
// so malformed inputs are rejected with the precise offending index instead
// of scribbling over out-of-range buckets (the Figure-2 sweep and the
// spinetree build both index `reduction[label]` unchecked otherwise).
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>

#include "common/labels.hpp"

namespace mp {

enum class ErrorCode {
  kOk = 0,
  kInvalidLabel,     // labels[index] >= m — the input violates §1's contract
  kShapeMismatch,    // values/labels/output extents disagree
  kPoolFailure,      // the thread pool cannot run the job (e.g. reentrancy)
  kExecutionFault,   // a lane faulted mid-phase, or self-verification failed
  kCancelled,        // the caller's cancel token fired (common/run_context.hpp)
  kDeadlineExceeded, // the run's deadline expired at a checkpoint
  kBudgetExceeded,   // a scratch request overflowed the run's byte budget
  kOverloaded,       // admission shed the request (serve/frontend.hpp) — the
                     // queue, byte, or tenant bound was hit, or the frontend
                     // is draining; retrying later (with backoff) is sane
  kUnsupported,      // a type-erased request named a dtype/op/kind outside
                     // the dispatch table (core/erased.hpp) — the request is
                     // malformed at the ABI level; retrying is pointless
  kIoError,          // a ChunkSource read failed or a carry checkpoint was
                     // corrupt (stream/*) — transient faults are retried
                     // under RetryPolicy before this surfaces
};

constexpr const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidLabel: return "invalid-label";
    case ErrorCode::kShapeMismatch: return "shape-mismatch";
    case ErrorCode::kPoolFailure: return "pool-failure";
    case ErrorCode::kExecutionFault: return "execution-fault";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::kBudgetExceeded: return "budget-exceeded";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kIoError: return "io-error";
  }
  return "unknown";
}

/// Value-type result of a validation or execution step. `index` pinpoints
/// the offending element for kInvalidLabel (npos when not applicable).
class Status {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  Status() = default;  // ok
  Status(ErrorCode code, std::string message, std::size_t index = npos)
      : code_(code), message_(std::move(message)), index_(index) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  ErrorCode code() const { return code_; }
  /// Index of the offending element, or npos.
  std::size_t index() const { return index_; }
  const std::string& message() const { return message_; }

  /// "invalid-label: label 9 at index 4 is out of range [0, 3)".
  std::string to_string() const {
    if (is_ok()) return "ok";
    return std::string(mp::to_string(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
  std::size_t index_ = npos;
};

/// Exception form of a non-ok Status, thrown by the public facade and the
/// thread pool. Carries the full Status so callers (notably the resilient
/// driver) can branch on the code instead of parsing what().
class MpError : public std::runtime_error {
 public:
  explicit MpError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}
  MpError(ErrorCode code, std::string message, std::size_t index = Status::npos)
      : MpError(Status(code, std::move(message), index)) {}

  const Status& status() const { return status_; }
  ErrorCode code() const { return status_.code(); }
  std::size_t index() const { return status_.index(); }

 private:
  Status status_;
};

// ---- label-range validation -----------------------------------------------

/// Single-pass vectorized label-range check: returns ok if every label is
/// < m, otherwise kInvalidLabel naming the first offending index.
///
/// The hot path is branch-free: blocks of labels are OR-folded into four
/// independent accumulators (auto-vectorizes to a compare+or per SIMD word),
/// and only a tripped block is rescanned for the precise index — so the
/// valid-input cost is one load + compare + or per label, O(n/width) vector
/// ops, matching the validation-cost discipline of production collectives.
inline Status validate_labels(std::span<const label_t> labels, std::size_t m) {
  const std::size_t n = labels.size();
  if (m > static_cast<std::size_t>(static_cast<label_t>(-1))) return Status::ok();
  const label_t bound = static_cast<label_t>(m);
  const label_t* p = labels.data();

  constexpr std::size_t kBlock = 1024;
  std::size_t base = 0;
  while (base < n) {
    const std::size_t len = n - base < kBlock ? n - base : kBlock;
    // Branch-free OR-fold over the block, 4 accumulators to expose ILP.
    label_t a0 = 0, a1 = 0, a2 = 0, a3 = 0;
    std::size_t i = 0;
    for (; i + 4 <= len; i += 4) {
      a0 |= static_cast<label_t>(p[base + i + 0] >= bound);
      a1 |= static_cast<label_t>(p[base + i + 1] >= bound);
      a2 |= static_cast<label_t>(p[base + i + 2] >= bound);
      a3 |= static_cast<label_t>(p[base + i + 3] >= bound);
    }
    for (; i < len; ++i) a0 |= static_cast<label_t>(p[base + i] >= bound);
    if ((a0 | a1 | a2 | a3) != 0) {
      // Rare path: rescan the tripped block for the first offender.
      for (std::size_t j = 0; j < len; ++j) {
        if (p[base + j] >= bound) {
          const std::size_t at = base + j;
          return Status(ErrorCode::kInvalidLabel,
                        "label " + std::to_string(p[at]) + " at index " + std::to_string(at) +
                            " is out of range [0, " + std::to_string(m) + ")",
                        at);
        }
      }
    }
    base += len;
  }
  return Status::ok();
}

/// Full input validation for a multiprefix call: shape agreement plus label
/// range. Every Strategy entry point in core/multiprefix.hpp runs this
/// before dispatch.
inline Status validate_inputs(std::size_t values_size, std::span<const label_t> labels,
                              std::size_t m) {
  if (values_size != labels.size())
    return Status(ErrorCode::kShapeMismatch,
                  "values size " + std::to_string(values_size) + " != labels size " +
                      std::to_string(labels.size()));
  return validate_labels(labels, m);
}

}  // namespace mp
