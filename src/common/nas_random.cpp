#include "common/nas_random.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace mp::nas {

namespace {
constexpr double kR23 = 0x1.0p-23;  // 2^-23
constexpr double kT23 = 0x1.0p+23;  // 2^23
constexpr double kR46 = 0x1.0p-46;  // 2^-46
constexpr double kT46 = 0x1.0p+46;  // 2^46
}  // namespace

double randlc(double& x, double a) {
  // Split a = 2^23 * a1 + a2 and x = 2^23 * x1 + x2; every partial product
  // then fits in the 52-bit mantissa, so the mod-2^46 product is exact.
  const double t1a = kR23 * a;
  const double a1 = static_cast<double>(static_cast<long long>(t1a));
  const double a2 = a - kT23 * a1;

  const double t1x = kR23 * x;
  const double x1 = static_cast<double>(static_cast<long long>(t1x));
  const double x2 = x - kT23 * x1;

  const double t1 = a1 * x2 + a2 * x1;
  const double t2 = static_cast<double>(static_cast<long long>(kR23 * t1));
  const double z = t1 - kT23 * t2;
  const double t3 = kT23 * z + a2 * x2;
  const double t4 = static_cast<double>(static_cast<long long>(kR46 * t3));
  x = t3 - kT46 * t4;
  return kR46 * x;
}

double randlc_exact(std::uint64_t& x, std::uint64_t a) {
  constexpr std::uint64_t kMask46 = (1ULL << 46) - 1;
  MP_ASSERT(x <= kMask46);
  const unsigned __int128 prod = static_cast<unsigned __int128>(x) * a;
  x = static_cast<std::uint64_t>(prod & kMask46);
  return static_cast<double>(x) * kR46;
}

std::vector<std::uint32_t> generate_is_keys(std::size_t n, std::uint32_t b_max, double seed) {
  MP_REQUIRE(b_max > 0, "key range must be positive");
  std::vector<std::uint32_t> keys(n);
  RandlcStream rng(seed);
  const double k = static_cast<double>(b_max) / 4.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double sum = rng.next() + rng.next() + rng.next() + rng.next();
    keys[i] = static_cast<std::uint32_t>(k * sum);  // in [0, b_max)
  }
  return keys;
}

}  // namespace mp::nas
