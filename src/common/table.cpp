#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "common/assert.hpp"

namespace mp {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  MP_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  MP_REQUIRE(row.size() == header_.size(), "row arity must match header");
  rows_.push_back(std::move(row));
}

void TextTable::add_rule() { rows_.emplace_back(); }

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t digits = 0;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
    else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' && c != '%' && c != 'x')
      return false;
  }
  return digits > 0;
}
}  // namespace

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto rule = [&] {
    out << '+';
    for (std::size_t w : width) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells, bool align_numeric) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string& s = cells[c];
      const std::size_t pad = width[c] - s.size();
      const bool right = align_numeric && looks_numeric(s);
      out << ' ' << (right ? std::string(pad, ' ') + s : s + std::string(pad, ' ')) << " |";
    }
    out << '\n';
  };

  rule();
  line(header_, /*align_numeric=*/false);
  rule();
  for (const auto& row : rows_) {
    if (row.empty()) rule();
    else line(row, /*align_numeric=*/true);
  }
  rule();
  return out.str();
}

std::string TextTable::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string TextTable::num(std::size_t v) { return std::to_string(v); }

}  // namespace mp
