// The NAS Parallel Benchmarks pseudo-random number generator.
//
// NPB 1.0 specifies the linear congruential generator
//
//     x_{k+1} = a * x_k  (mod 2^46),    a = 5^13 = 1220703125,
//
// returning r_k = x_k * 2^-46 in (0, 1). The reference implementation
// (`randlc`) performs the 46-bit modular product in double precision by
// splitting operands into 23-bit halves. We provide two implementations:
//
//  * randlc()      — the faithful double-precision split arithmetic, exactly
//                    as published (and as every NPB port implements it);
//  * randlc_exact()— 128-bit integer arithmetic, used by the tests to prove
//                    the split arithmetic is exact for every reachable state.
//
// The IS (Integer Sort) benchmark derives each key as the scaled mean of four
// consecutive uniform deviates, giving an approximately binomial ("Gaussian")
// key distribution over [0, B_max). See nas_is.hpp for the full benchmark.
#pragma once

#include <cstdint>
#include <vector>

namespace mp::nas {

/// Seed specified by the NAS IS benchmark.
inline constexpr double kDefaultSeed = 314159265.0;
/// Multiplier a = 5^13 specified by the NAS benchmarks.
inline constexpr double kDefaultMultiplier = 1220703125.0;

/// One step of the NPB generator using the published double-precision split
/// arithmetic. Advances `x` in place and returns x * 2^-46 in (0, 1).
double randlc(double& x, double a);

/// One step of the generator in exact 128-bit integer arithmetic.
/// `x` must be an odd integer below 2^46. Returns x * 2^-46.
double randlc_exact(std::uint64_t& x, std::uint64_t a = 1220703125ULL);

/// Stateful convenience wrapper around randlc().
class RandlcStream {
 public:
  explicit RandlcStream(double seed = kDefaultSeed, double a = kDefaultMultiplier)
      : x_(seed), a_(a) {}

  /// Next uniform deviate in (0, 1).
  double next() { return randlc(x_, a_); }

  /// Raw generator state (an integer-valued double below 2^46).
  double state() const { return x_; }

 private:
  double x_;
  double a_;
};

/// Generates the NAS IS key sequence: key_i = floor(B_max/4 * (r1+r2+r3+r4))
/// where r1..r4 are consecutive deviates. Keys lie in [0, B_max).
std::vector<std::uint32_t> generate_is_keys(std::size_t n, std::uint32_t b_max,
                                            double seed = kDefaultSeed);

}  // namespace mp::nas
