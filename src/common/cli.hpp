// Minimal command-line flag parsing for examples and bench binaries.
//
// Flags take the forms `--name=value` and `--name value`; `--name` alone sets
// a boolean. Unrecognized flags are left for downstream consumers (google-
// benchmark parses its own flags from the same argv), so parsing is lenient:
// ask for the flags you know about, ignore the rest.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/dtype.hpp"

namespace mp {

/// Parsed view of argv. Copies the strings; argv is not modified.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  /// Value lookups with defaults. Malformed numbers throw std::invalid_argument.
  std::string get(const std::string& name, const std::string& dflt) const;
  std::int64_t get(const std::string& name, std::int64_t dflt) const;
  double get(const std::string& name, double dflt) const;
  bool get(const std::string& name, bool dflt) const;
  /// Element-type / operator flags, parsed by the single source of truth in
  /// common/dtype.hpp (so --dtype=f64 and --op=add spell the same thing
  /// everywhere). Unknown names throw std::invalid_argument naming the flag.
  DType get(const std::string& name, DType dflt) const;
  OpKind get(const std::string& name, OpKind dflt) const;

 private:
  std::map<std::string, std::string> values_;  // flag -> value ("" for bare flags)
};

}  // namespace mp
