// Lightweight contract macros used across the library.
//
// MP_REQUIRE  — precondition on public API arguments; always checked, throws
//               std::invalid_argument so callers can test misuse.
// MP_ASSERT   — internal invariant; checked in debug builds only, aborts.
//
// Following the C++ Core Guidelines (I.5/I.6), preconditions on public
// entry points are expressed explicitly rather than as comments.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace mp {

[[noreturn]] inline void require_failed(const char* cond, const char* file, int line,
                                        const std::string& what) {
  throw std::invalid_argument(std::string("precondition failed: ") + cond + " at " + file +
                              ":" + std::to_string(line) + (what.empty() ? "" : ": " + what));
}

}  // namespace mp

#define MP_REQUIRE(cond, msg)                                  \
  do {                                                         \
    if (!(cond)) ::mp::require_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifndef NDEBUG
#define MP_ASSERT(cond)                                                              \
  do {                                                                               \
    if (!(cond)) {                                                                   \
      std::fprintf(stderr, "assertion failed: %s at %s:%d\n", #cond, __FILE__, __LINE__); \
      std::abort();                                                                  \
    }                                                                                \
  } while (0)
#else
#define MP_ASSERT(cond) ((void)0)
#endif
