// Wall-clock timing helpers used by benches and examples.
//
// All measurements in this project report seconds (double). For robust
// microbenchmark numbers use `time_best_of`, which runs a callable several
// times and keeps the minimum — the standard way to suppress scheduling
// noise for deterministic kernels.
#pragma once

#include <chrono>
#include <cstddef>
#include <utility>

namespace mp {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Runs `fn` once and returns the elapsed seconds.
template <class Fn>
double time_once(Fn&& fn) {
  Timer t;
  std::forward<Fn>(fn)();
  return t.seconds();
}

/// Runs `fn` `reps` times (at least once) and returns the fastest run in
/// seconds. Deterministic kernels' true cost is the minimum over repetitions.
template <class Fn>
double time_best_of(std::size_t reps, Fn&& fn) {
  double best = time_once(fn);
  for (std::size_t r = 1; r < reps; ++r) {
    const double t = time_once(fn);
    if (t < best) best = t;
  }
  return best;
}

}  // namespace mp
