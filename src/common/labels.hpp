// Label-vector synthesis for tests and benchmarks.
//
// The paper's performance study (§4.3, Figure 10) is organized around the
// "load" of a bucket — the number of elements in its class. These generators
// produce label vectors with controlled load characteristics:
//
//   uniform_labels   — n labels drawn uniformly from m buckets (load ≈ n/m);
//                      this is exactly Figure 10's setup, where a load factor
//                      of 1 means m == n *drawn randomly* (not a permutation).
//   constant_labels  — all elements in one class (load = n, Figure 10's
//                      heaviest curve; also how multiprefix expresses a scan).
//   permutation_labels — a true one-to-one assignment (every load exactly 1).
//   segmented_labels — consecutive runs share a label (how multiprefix
//                      expresses segmented scans, §1).
//   zipf_labels      — skewed loads for robustness/ablation studies.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace mp {

using label_t = std::uint32_t;

inline std::vector<label_t> uniform_labels(std::size_t n, std::size_t m, std::uint64_t seed) {
  MP_REQUIRE(m > 0, "need at least one bucket");
  Xoshiro256 rng(seed);
  std::vector<label_t> labels(n);
  for (auto& l : labels) l = static_cast<label_t>(rng.below(m));
  return labels;
}

inline std::vector<label_t> constant_labels(std::size_t n, label_t value = 0) {
  return std::vector<label_t>(n, value);
}

inline std::vector<label_t> permutation_labels(std::size_t n, std::uint64_t seed) {
  std::vector<label_t> labels(n);
  std::iota(labels.begin(), labels.end(), label_t{0});
  Xoshiro256 rng(seed);
  for (std::size_t i = n; i > 1; --i)
    std::swap(labels[i - 1], labels[rng.below(i)]);
  return labels;
}

/// Runs of `run_len` consecutive elements share a label (last run may be
/// short). Labels are assigned 0, 1, 2, ... per run, so m = ceil(n/run_len).
inline std::vector<label_t> segmented_labels(std::size_t n, std::size_t run_len) {
  MP_REQUIRE(run_len > 0, "runs must be non-empty");
  std::vector<label_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) labels[i] = static_cast<label_t>(i / run_len);
  return labels;
}

/// Zipf-distributed labels over m buckets with exponent `s` (s=0 → uniform).
/// Sampled by inverting the empirical CDF; O(m) setup, O(log m) per draw.
inline std::vector<label_t> zipf_labels(std::size_t n, std::size_t m, double s,
                                        std::uint64_t seed) {
  MP_REQUIRE(m > 0, "need at least one bucket");
  MP_REQUIRE(s >= 0.0, "zipf exponent must be non-negative");
  std::vector<double> cdf(m);
  double acc = 0.0;
  for (std::size_t k = 0; k < m; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf[k] = acc;
  }
  Xoshiro256 rng(seed);
  std::vector<label_t> labels(n);
  for (auto& l : labels) {
    const double u = rng.uniform() * acc;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    l = static_cast<label_t>(it - cdf.begin());
  }
  return labels;
}

}  // namespace mp
