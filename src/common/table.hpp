// Plain-text table rendering for the benchmark harness.
//
// Every bench binary reprints the corresponding paper table with our measured
// (and, where applicable, Cray-modeled) numbers; this class produces the
// aligned, boxed layout those reports share.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mp {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// fixed precision. Rendering right-aligns cells that parse as numbers.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal rule before the next row.
  void add_rule();

  /// Renders the table, one trailing newline included.
  std::string render() const;

  /// Formats `v` with `prec` digits after the decimal point.
  static std::string num(double v, int prec = 2);
  static std::string num(std::size_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == rule
};

}  // namespace mp
