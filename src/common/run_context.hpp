// Run governance — deadlines, cooperative cancellation, memory budgets and
// retry policy for a single multiprefix/multireduce run.
//
// The resilient driver (core/resilient.hpp) reacts to *reported* failures;
// a production collective also has to bound what a run may consume before
// anything fails: wall-clock (a deadline), progress (a cancellation token
// the caller can flip), and memory (a byte budget for scratch). RunContext
// carries all three plus a bounded retry policy, and is threaded from the
// Engine facade through every Strategy, both executors and the pardo layer.
//
// The enforcement discipline mirrors the paper's phase structure: every
// strategy is a sequence of passes over chunk/row/column ranges, and the
// boundaries between chunks are the only points where no partially-combined
// value is in flight. Checkpoints are therefore *cooperative* and placed at
// chunk granularity (kCancelCheckBlock indices): a cancelled or
// deadline-expired run throws MpError(kCancelled / kDeadlineExceeded) within
// one chunk's latency, and the output spans hold either untouched or fully
// written prefixes — never a torn combine. Budget violations surface as
// MpError(kBudgetExceeded) from the charge site (Workspace::acquire or a
// strategy's own scratch), which the engine converts into degradation to a
// lower-footprint strategy instead of an OOM kill.
//
// Everything here is allocation-free on the hot path: poll() is one or two
// relaxed atomic loads plus (when a deadline is armed) a clock read, paid
// once per kCancelCheckBlock elements.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "common/error.hpp"

namespace mp {

namespace obs {
class Tracer;  // src/obs/trace.hpp — forward-declared to keep common below obs
}  // namespace obs

/// Shared cancellation flag. CancelSource owns the flag (caller side);
/// CancelToken is the read-only view a RunContext carries. Copies share the
/// same flag, so a token outlives the run that observes it.
class CancelToken {
 public:
  CancelToken() = default;

  /// True when the owning CancelSource has requested cancellation. A default
  /// token (no source) is never cancelled.
  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

  /// True when this token is connected to a source at all.
  bool can_be_cancelled() const { return flag_ != nullptr; }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<std::atomic<bool>> flag) : flag_(std::move(flag)) {}
  std::shared_ptr<std::atomic<bool>> flag_;
};

class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Flips the flag; every token handed out observes it on its next poll.
  /// Idempotent and safe to call from any thread (including concurrently
  /// with the governed run itself — that is the whole point).
  void request_cancel() { flag_->store(true, std::memory_order_relaxed); }

  bool cancel_requested() const { return flag_->load(std::memory_order_relaxed); }

  CancelToken token() const { return CancelToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Bounded retry for *transient* substrate failures: the engine re-runs the
/// same strategy up to max_retries times after kPoolFailure, and the stream
/// layer re-reads a chunk up to max_retries times after a transient
/// kIoError, sleeping `backoff` between attempts, before the error
/// surfaces. The default is no retries — identical to the pre-governance
/// behaviour.
struct RetryPolicy {
  std::size_t max_retries = 0;
  std::chrono::microseconds backoff{100};
};

/// Observability block for degraded-mode execution. Shared by the resilient
/// driver and the engine's governed dispatch. All counters are relaxed
/// atomics: totals are exact, cross-counter consistency is best-effort.
struct FallbackCounters {
  std::atomic<std::uint64_t> attempts{0};          // stages tried
  std::atomic<std::uint64_t> successes{0};         // calls that returned
  std::atomic<std::uint64_t> fallbacks{0};         // stages abandoned
  std::atomic<std::uint64_t> pool_failures{0};     // abandoned: kPoolFailure
  std::atomic<std::uint64_t> execution_faults{0};  // abandoned: kExecutionFault/bad_alloc
  std::atomic<std::uint64_t> verify_failures{0};   // abandoned: self-check mismatch
  std::atomic<std::uint64_t> exhausted{0};         // whole chain failed
  // Retries are split by cause so a pool-flap and a flaky disk are
  // distinguishable in production counters: pool_retries is the engine's
  // same-strategy re-run after kPoolFailure, io_retries is the stream
  // layer's re-read after a transient kIoError. Both burn the same
  // RetryPolicy budget at their respective sites and are mirrored 1:1 as
  // obs::Event::kRetry / kIoRetry.
  std::atomic<std::uint64_t> pool_retries{0};      // same-strategy retry after kPoolFailure
  std::atomic<std::uint64_t> io_retries{0};        // chunk re-read after transient kIoError
  std::atomic<std::uint64_t> io_faults{0};         // kIoError observed (incl. retried ones)
  std::atomic<std::uint64_t> checkpoints_saved{0}; // carry snapshots serialized (stream/*)
  std::atomic<std::uint64_t> cancellations{0};     // runs ended by the cancel token
  std::atomic<std::uint64_t> deadlines_exceeded{0};  // runs ended by the deadline
  std::atomic<std::uint64_t> budget_degrades{0};   // strategy demoted to fit the byte budget
  // Serving-frontend vocabulary (serve/frontend.hpp); every increment is
  // mirrored as the matching obs::Event so both surfaces always agree.
  std::atomic<std::uint64_t> overload_sheds{0};    // admissions rejected kOverloaded
  std::atomic<std::uint64_t> breaker_trips{0};     // circuit breaker cells opened
  std::atomic<std::uint64_t> breaker_probes{0};    // half-open probe dispatches
  std::atomic<std::uint64_t> breaker_resets{0};    // cells closed by probe success
  std::atomic<std::uint64_t> drain_cancels{0};     // queued requests cancelled at drain
  std::atomic<std::uint64_t> coalesced_batches{0};  // multi-request segmented passes

  void reset() {
    // Plain chained `=` through atomics assigns the int result of each
    // store, not the atomic — spell out the stores.
    attempts.store(0, std::memory_order_relaxed);
    successes.store(0, std::memory_order_relaxed);
    fallbacks.store(0, std::memory_order_relaxed);
    pool_failures.store(0, std::memory_order_relaxed);
    execution_faults.store(0, std::memory_order_relaxed);
    verify_failures.store(0, std::memory_order_relaxed);
    exhausted.store(0, std::memory_order_relaxed);
    pool_retries.store(0, std::memory_order_relaxed);
    io_retries.store(0, std::memory_order_relaxed);
    io_faults.store(0, std::memory_order_relaxed);
    checkpoints_saved.store(0, std::memory_order_relaxed);
    cancellations.store(0, std::memory_order_relaxed);
    deadlines_exceeded.store(0, std::memory_order_relaxed);
    budget_degrades.store(0, std::memory_order_relaxed);
    overload_sheds.store(0, std::memory_order_relaxed);
    breaker_trips.store(0, std::memory_order_relaxed);
    breaker_probes.store(0, std::memory_order_relaxed);
    breaker_resets.store(0, std::memory_order_relaxed);
    drain_cancels.store(0, std::memory_order_relaxed);
    coalesced_batches.store(0, std::memory_order_relaxed);
  }
};

/// The process-wide counter block used when no explicit block is given.
inline FallbackCounters& global_fallback_counters() {
  static FallbackCounters counters;
  return counters;
}

/// Indices processed between cooperative checkpoints inside pass loops —
/// the "chunk" of the one-chunk-latency cancellation guarantee. Matches
/// kDefaultGrain so a checkpoint never lands inside a lane's SIMD kernel
/// call.
inline constexpr std::size_t kCancelCheckBlock = 4096;

/// Per-run governance: deadline, cancellation, byte budget, retry policy.
/// Non-copyable (it carries the run's live budget accounting); pass by
/// reference from the caller's stack and bind `&ctx` down the pass loops.
/// Thread-safe: lanes poll and charge concurrently.
class RunContext {
 public:
  using Clock = std::chrono::steady_clock;

  RunContext() = default;
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  /// Absolute deadline; unset means unbounded.
  std::optional<Clock::time_point> deadline;
  /// Cancellation token; a default token never fires.
  CancelToken cancel;
  /// Scratch byte budget for the run; 0 means unbounded. Charged by
  /// Workspace (via BudgetScope) and by strategies' own scratch.
  std::size_t byte_budget = 0;
  /// Bounded retry for transient kPoolFailure before fallback engages.
  RetryPolicy retry;
  /// Counter block for degraded-mode events; null = global_fallback_counters().
  FallbackCounters* counters = nullptr;
  /// Span/metrics sink for this run; null defers to the ambient tracer
  /// (obs::sink_for). Highest-precedence way to trace one run.
  obs::Tracer* tracer = nullptr;

  /// Convenience: deadline `timeout` from now.
  void set_timeout(Clock::duration timeout) { deadline = Clock::now() + timeout; }

  /// True when any governance dimension is armed — the engine takes the
  /// governed dispatch path only then, so an ungoverned call costs nothing.
  bool governed() const {
    return deadline.has_value() || cancel.can_be_cancelled() || byte_budget != 0 ||
           retry.max_retries != 0;
  }

  bool memory_governed() const { return byte_budget != 0; }

  FallbackCounters& sink() const {
    return counters != nullptr ? *counters : global_fallback_counters();
  }

  /// Non-throwing governance check: kOk, kCancelled or kDeadlineExceeded.
  /// Does not touch counters — the engine counts once per run at the catch
  /// site, not once per chunk per lane.
  Status poll() const {
    polls_.fetch_add(1, std::memory_order_relaxed);
    if (cancel.cancelled())
      return Status(ErrorCode::kCancelled, "run cancelled by caller");
    if (deadline && Clock::now() >= *deadline)
      return Status(ErrorCode::kDeadlineExceeded, "run deadline expired");
    return Status::ok();
  }

  /// Throwing form of poll(), for use at chunk boundaries inside pass loops.
  void checkpoint() const {
    if (Status st = poll(); !st.is_ok()) throw MpError(std::move(st));
  }

  /// Charges `bytes` against the budget; kBudgetExceeded when it doesn't
  /// fit (the charge is not recorded then, so the caller may degrade and
  /// retry with a smaller footprint).
  Status charge(std::size_t bytes) const {
    if (byte_budget == 0 || bytes == 0) return Status::ok();
    std::size_t used = used_.load(std::memory_order_relaxed);
    for (;;) {
      if (bytes > byte_budget - used)
        return Status(ErrorCode::kBudgetExceeded,
                      "scratch request of " + std::to_string(bytes) +
                          " bytes exceeds remaining budget (" +
                          std::to_string(byte_budget - used) + " of " +
                          std::to_string(byte_budget) + " bytes left)");
      if (used_.compare_exchange_weak(used, used + bytes, std::memory_order_relaxed))
        return Status::ok();
    }
  }

  /// Returns previously charged bytes to the budget (scratch released).
  void uncharge(std::size_t bytes) const {
    if (byte_budget == 0 || bytes == 0) return;
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  std::size_t used_bytes() const { return used_.load(std::memory_order_relaxed); }

  /// Cooperative checkpoint polls observed so far — the tracer attributes
  /// the per-attempt delta to its dispatch span (kCheckpointPoll events).
  std::uint64_t poll_count() const { return polls_.load(std::memory_order_relaxed); }

  std::size_t remaining_bytes() const {
    if (byte_budget == 0) return static_cast<std::size_t>(-1);
    const std::size_t used = used_.load(std::memory_order_relaxed);
    return used < byte_budget ? byte_budget - used : 0;
  }

  /// The ungoverned context every defaulted entry point binds to — all
  /// checks compile down to loads of never-set fields.
  static const RunContext& none() {
    static const RunContext ctx;
    return ctx;
  }

 private:
  mutable std::atomic<std::size_t> used_{0};
  mutable std::atomic<std::uint64_t> polls_{0};
};

/// Nullable-checkpoint helper for the pass loops: strategies take
/// `const RunContext* rc = nullptr` so ungoverned callers pay one pointer
/// test per chunk, nothing more.
inline void checkpoint(const RunContext* rc) {
  if (rc != nullptr) rc->checkpoint();
}

/// RAII charge against a context's byte budget: throws
/// MpError(kBudgetExceeded) on construction when the request does not fit,
/// uncharges on destruction. Null context = no-op.
class BudgetCharge {
 public:
  BudgetCharge(const RunContext* rc, std::size_t bytes)
      : rc_(rc != nullptr && rc->memory_governed() ? rc : nullptr), bytes_(bytes) {
    if (rc_ == nullptr) return;
    if (Status st = rc_->charge(bytes_); !st.is_ok()) throw MpError(std::move(st));
  }
  ~BudgetCharge() {
    if (rc_ != nullptr) rc_->uncharge(bytes_);
  }
  BudgetCharge(const BudgetCharge&) = delete;
  BudgetCharge& operator=(const BudgetCharge&) = delete;

 private:
  const RunContext* rc_;
  std::size_t bytes_;
};

}  // namespace mp
