// Runtime element-type and operator vocabulary for the type-erased ABI.
//
// Everything below the engine is templated over (T, Op) — the right call for
// the kernels, where the combine must inline into the SIMD loops. But a
// serving boundary cannot be a template: FFI callers, wire protocols and
// runtime-configured clients name their element type and operator as *data*.
// This header is the single source of truth for that data vocabulary: the
// enums, their sizes, and the one parse/format pair shared by the CLI layer
// (common/cli.cpp), the bench flag helpers (bench/bench_common.hpp), the
// erased dispatch table (core/erased.hpp) and the C ABI (include/mp.h, whose
// enum values mirror these by definition — see src/ffi/capi.cpp's
// static_asserts).
//
// The operator set is the intersection that is well-defined for every
// supported dtype: kPlus/kTimes/kMin/kMax. The bitwise ops of core/ops.hpp
// stay template-only — they do not instantiate for float/double, so admitting
// them here would turn a compile-time error into a runtime one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace mp {

/// Element types the erased ABI can carry. Values are a stable ABI contract
/// (the C header mirrors them numerically); append, never reorder.
enum class DType : std::uint8_t {
  kInt32 = 0,
  kInt64,
  kFloat32,
  kFloat64,
};
inline constexpr std::size_t kDTypeCount = 4;

/// Associative operators the erased ABI can name. Same stability contract.
enum class OpKind : std::uint8_t {
  kPlus = 0,
  kTimes,
  kMin,
  kMax,
};
inline constexpr std::size_t kOpKindCount = 4;

constexpr std::size_t dtype_index(DType dtype) { return static_cast<std::size_t>(dtype); }
constexpr std::size_t op_index(OpKind op) { return static_cast<std::size_t>(op); }

/// True when the numeric value (e.g. an int that crossed the C ABI) names a
/// live enumerator — the erased entry points validate with these instead of
/// trusting the cast.
constexpr bool dtype_valid(DType dtype) { return dtype_index(dtype) < kDTypeCount; }
constexpr bool op_kind_valid(OpKind op) { return op_index(op) < kOpKindCount; }

constexpr std::size_t dtype_size(DType dtype) {
  switch (dtype) {
    case DType::kInt32: return 4;
    case DType::kInt64: return 8;
    case DType::kFloat32: return 4;
    case DType::kFloat64: return 8;
  }
  return 0;
}

constexpr const char* to_string(DType dtype) {
  switch (dtype) {
    case DType::kInt32: return "int32";
    case DType::kInt64: return "int64";
    case DType::kFloat32: return "float32";
    case DType::kFloat64: return "float64";
  }
  return "unknown";
}

constexpr const char* to_string(OpKind op) {
  switch (op) {
    case OpKind::kPlus: return "plus";
    case OpKind::kTimes: return "times";
    case OpKind::kMin: return "min";
    case OpKind::kMax: return "max";
  }
  return "unknown";
}

/// Parses the to_string() spelling (plus the common aliases callers actually
/// type); nullopt for anything else — misspelled flags must not silently
/// dispatch the wrong kernel.
constexpr std::optional<DType> parse_dtype(std::string_view name) {
  if (name == "int32" || name == "i32") return DType::kInt32;
  if (name == "int64" || name == "i64") return DType::kInt64;
  if (name == "float32" || name == "f32" || name == "float") return DType::kFloat32;
  if (name == "float64" || name == "f64" || name == "double") return DType::kFloat64;
  return std::nullopt;
}

constexpr std::optional<OpKind> parse_op_kind(std::string_view name) {
  if (name == "plus" || name == "add" || name == "sum") return OpKind::kPlus;
  if (name == "times" || name == "mul" || name == "prod") return OpKind::kTimes;
  if (name == "min") return OpKind::kMin;
  if (name == "max") return OpKind::kMax;
  return std::nullopt;
}

}  // namespace mp
