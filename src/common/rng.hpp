// Deterministic pseudo-random number generation for workload synthesis.
//
// All generators in the project are seeded explicitly so that every test,
// example and benchmark is reproducible run-to-run. The general-purpose
// generator is xoshiro256** (public-domain algorithm by Blackman & Vigna);
// SplitMix64 is used for seed expansion, as its authors recommend.
//
// The NAS benchmark generator (`randlc`, 46-bit linear congruential) lives in
// nas_random.hpp because its exact arithmetic is part of the NAS IS spec.
#pragma once

#include <cstdint>
#include <limits>

#include "common/assert.hpp"

namespace mp {

/// SplitMix64: a tiny 64-bit generator used to expand one seed word into the
/// state of larger generators. Passes BigCrush when used standalone.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the project's workhorse generator. Satisfies
/// std::uniform_random_bit_generator so it can drive <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction;
  /// the slight modulo bias (< 2^-32 for bound < 2^32) is irrelevant for
  /// workload synthesis and keeps generation branch-free.
  std::uint64_t below(std::uint64_t bound) {
    MP_ASSERT(bound > 0);
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(operator()() >> 11) * 0x1.0p-53; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace mp
