// Portable fixed-width SIMD lane types — the modern stand-in for the paper's
// Y-MP vector registers.
//
// `Vec<T, W>` wraps a GCC/Clang vector-extension type of W lanes of T. The
// compiler lowers arithmetic on these types to the widest instructions the
// *target ISA* allows: under the default build that is baseline SSE2 on
// x86-64 (wider Vecs are split into several 128-bit operations — still a
// large win over the scalar recurrences), and under -march=native
// (MP_ENABLE_NATIVE=ON) real AVX2/AVX-512 code. Because the lowering is
// always legal for the compile target, *every* lane width is functionally
// safe to execute on every machine the binary runs on; runtime dispatch
// (simd/dispatch.hpp) only chooses which width is profitable.
//
// On compilers without the vector extensions a scalar fallback `Vec` keeps
// everything compiling; kernels then collapse to their scalar loops
// (simd/kernels.hpp gates on `kHasVectorExt`).
//
// All loads/stores go through memcpy (unaligned-safe; compiles to plain
// vector moves). Cross-lane data movement uses __builtin_shufflevector,
// available in GCC >= 12 and Clang.
#pragma once

#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>

#if defined(__GNUC__) && defined(__has_builtin)
#if __has_builtin(__builtin_shufflevector)
#define MP_SIMD_VECTOR_EXT 1
#endif
#endif
#ifndef MP_SIMD_VECTOR_EXT
#define MP_SIMD_VECTOR_EXT 0
#endif

namespace mp::simd {

inline constexpr bool kHasVectorExt = MP_SIMD_VECTOR_EXT != 0;

/// Lane element types: the arithmetic types the paper's operators range over
/// (INTEGER and FLOATING; BOOLEAN rides on the integer types).
template <class T>
concept SimdElement = std::is_arithmetic_v<T> && !std::is_same_v<T, bool>;

#if MP_SIMD_VECTOR_EXT

template <SimdElement T, std::size_t W>
  requires(W >= 2 && (W & (W - 1)) == 0)
struct Vec {
  static constexpr std::size_t kLanes = W;
  typedef T native __attribute__((vector_size(W * sizeof(T))));
  native v;

  static Vec load(const T* p) {
    Vec r;
    std::memcpy(&r.v, p, sizeof(r.v));
    return r;
  }
  void store(T* p) const { std::memcpy(p, &v, sizeof(v)); }
  /// All lanes = x (zero-vector plus scalar broadcasts in the extension).
  static Vec broadcast(T x) { return Vec{native{} + x}; }
  T lane(std::size_t i) const { return v[i]; }
  T back() const { return v[W - 1]; }
};

namespace detail {

template <std::size_t S, SimdElement T, std::size_t W, std::size_t... Is>
inline typename Vec<T, W>::native shift_up_seq(typename Vec<T, W>::native v,
                                               typename Vec<T, W>::native fill,
                                               std::index_sequence<Is...>) {
  // Result lane i takes `fill` for i < S, else lane i - S of v. Lane W is
  // the first lane of the concatenated (v, fill) pair's second operand.
  return __builtin_shufflevector(v, fill,
                                 (Is < S ? static_cast<int>(W) : static_cast<int>(Is - S))...);
}

template <SimdElement T, std::size_t W, std::size_t... Is>
inline auto even_lanes_seq(typename Vec<T, W>::native v, std::index_sequence<Is...>) {
  return __builtin_shufflevector(v, v, static_cast<int>(2 * Is)...);
}

template <SimdElement T, std::size_t W, std::size_t... Is>
inline auto odd_lanes_seq(typename Vec<T, W>::native v, std::index_sequence<Is...>) {
  return __builtin_shufflevector(v, v, static_cast<int>(2 * Is + 1)...);
}

}  // namespace detail

/// Lanes shifted toward higher indices by S; vacated low lanes take the
/// corresponding lane of `fill` (the identity vector, for scan trees).
template <std::size_t S, SimdElement T, std::size_t W>
inline Vec<T, W> shift_up(Vec<T, W> x, Vec<T, W> fill) {
  static_assert(S <= W);
  if constexpr (S == 0) {
    return x;
  } else if constexpr (S == W) {
    return fill;
  } else {
    return Vec<T, W>{
        detail::shift_up_seq<S, T, W>(x.v, fill.v, std::make_index_sequence<W>{})};
  }
}

/// Even/odd lane extraction (half-width results) — the order-preserving
/// pairwise tree reduce is built from these: lane i of the combined result
/// is op(v[2i], v[2i+1]), i.e. adjacent elements combine, so associativity
/// alone (no commutativity) justifies the tree.
template <SimdElement T, std::size_t W>
  requires(W >= 4)
inline Vec<T, W / 2> even_lanes(Vec<T, W> x) {
  return Vec<T, W / 2>{detail::even_lanes_seq<T, W>(x.v, std::make_index_sequence<W / 2>{})};
}

template <SimdElement T, std::size_t W>
  requires(W >= 4)
inline Vec<T, W / 2> odd_lanes(Vec<T, W> x) {
  return Vec<T, W / 2>{detail::odd_lanes_seq<T, W>(x.v, std::make_index_sequence<W / 2>{})};
}

#else  // !MP_SIMD_VECTOR_EXT — scalar stand-in so kernels still compile.

template <SimdElement T, std::size_t W>
  requires(W >= 2 && (W & (W - 1)) == 0)
struct Vec {
  static constexpr std::size_t kLanes = W;
  T v[W];

  static Vec load(const T* p) {
    Vec r;
    std::memcpy(r.v, p, sizeof(r.v));
    return r;
  }
  void store(T* p) const { std::memcpy(p, v, sizeof(v)); }
  static Vec broadcast(T x) {
    Vec r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = x;
    return r;
  }
  T lane(std::size_t i) const { return v[i]; }
  T back() const { return v[W - 1]; }
};

template <std::size_t S, SimdElement T, std::size_t W>
inline Vec<T, W> shift_up(Vec<T, W> x, Vec<T, W> fill) {
  Vec<T, W> r;
  for (std::size_t i = 0; i < W; ++i) r.v[i] = i < S ? fill.v[i] : x.v[i - S];
  return r;
}

template <SimdElement T, std::size_t W>
  requires(W >= 4)
inline Vec<T, W / 2> even_lanes(Vec<T, W> x) {
  Vec<T, W / 2> r;
  for (std::size_t i = 0; i < W / 2; ++i) r.v[i] = x.v[2 * i];
  return r;
}

template <SimdElement T, std::size_t W>
  requires(W >= 4)
inline Vec<T, W / 2> odd_lanes(Vec<T, W> x) {
  Vec<T, W / 2> r;
  for (std::size_t i = 0; i < W / 2; ++i) r.v[i] = x.v[2 * i + 1];
  return r;
}

#endif  // MP_SIMD_VECTOR_EXT

/// Lane counts for the three vector-register tiers. At least 2 lanes: a
/// 1-lane "vector" is the scalar path, dispatched separately.
template <SimdElement T>
inline constexpr std::size_t kLanes128 = 16 / sizeof(T) < 2 ? 2 : 16 / sizeof(T);
template <SimdElement T>
inline constexpr std::size_t kLanes256 = 32 / sizeof(T);
template <SimdElement T>
inline constexpr std::size_t kLanes512 = 64 / sizeof(T);

}  // namespace mp::simd
