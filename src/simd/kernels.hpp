// SIMD kernels for the multiprefix hot loops, dispatched by SimdLevel.
//
// Each kernel is compiled at the four tiers of simd/dispatch.hpp (scalar and
// 128/256/512-bit lanes) and selected through a per-kernel function-pointer
// table. The scalar entries are byte-for-byte the reference recurrences the
// rest of the library was built on, so forcing SimdLevel::kScalar reproduces
// the pre-SIMD behaviour exactly; the vector entries are the
// Zhang–Wang–Ross-style kernels (arXiv 2312.14874) mapped onto the paper's
// Y-MP pipeline model:
//
//   inclusive/exclusive scan  in-register shift-and-combine tree (log2 W
//                             steps) per block, plus a running broadcast
//                             carry — §3 of Zhang et al. Associativity alone
//                             justifies the tree: the shifted operand always
//                             combines on the left of the later elements, so
//                             non-commutative operators are preserved (the
//                             combine is reassociated, which matters only
//                             for floating-point rounding).
//   reduce                    order-preserving pairwise fold: adjacent lanes
//                             combine (even, odd) per step, so the operand
//                             order of every op() call respects vector order.
//   histogram                 conflict-free sub-histograms: four interleaved
//                             count tables break the store-to-load forwarding
//                             chains that serialize repeated labels (the
//                             counting-sort inner loop of core/sort_based.hpp
//                             and §5.1.1's NAS IS kernel).
//   rank_scatter              the counting-sort cursor scatter. Inherently
//                             sequential per class (each slot depends on the
//                             cursor's exact running value) — the scalar tier
//                             runs the branch-free reference loop; the vector
//                             tiers stage each class's indices in a software
//                             write-combining line buffer and flush full
//                             cache lines, turning m scattered 4-byte stores
//                             into sequential line writes. Label validation
//                             is hoisted to one up-front max_label() sweep.
//   banded bucket sweeps      the fused ROWSUMS(+MULTISUMS) recurrences over
//                             a list of independent contiguous bands: the
//                             scalar tier sweeps the bands one at a time
//                             (byte-for-byte the Figure 2 recurrence per
//                             band); the vector tiers interleave 4 bands in
//                             one loop, so a run of equal labels advances
//                             four independent store-to-load forwarding
//                             chains instead of one — the histogram_ilp trick
//                             carried over to value accumulation. Per-band
//                             results are bit-identical at every tier (the
//                             interleave never reorders a band's own
//                             combines).
//   column scans              the chunked strategy's pass-2 recurrence,
//                             batched across labels: adjacent labels occupy
//                             adjacent columns of the chunk-major P × m
//                             matrix, so W label columns scan in lockstep
//                             with contiguous loads. No reassociation at all
//                             — each column's combine order is unchanged —
//                             hence bit-identical for every type, floats
//                             included.
//   fill / combine            the executors' identity-fill and reduction-
//                             extraction sweeps (op(spinesum, rowsum)).
//
// Operators without a vector mapping (custom test operators, the logical
// AND/OR over arbitrary T) degrade to the scalar entry at every tier via
// kVectorizable — the dispatch table is total.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/labels.hpp"
#include "common/run_context.hpp"
#include "core/ops.hpp"
#include "simd/dispatch.hpp"
#include "simd/vec.hpp"

namespace mp::simd {

// ---- operator → vector-extension mapping -----------------------------------

/// kVecOpOk<Op, T>: Op has a lane-wise vector implementation for element T.
template <class Op, class T>
inline constexpr bool kVecOpOk = false;
template <class T>
inline constexpr bool kVecOpOk<Plus, T> = true;
template <class T>
inline constexpr bool kVecOpOk<Times, T> = true;
template <class T>
inline constexpr bool kVecOpOk<Min, T> = true;
template <class T>
inline constexpr bool kVecOpOk<Max, T> = true;
template <class T>
inline constexpr bool kVecOpOk<BitAnd, T> = std::is_integral_v<T>;
template <class T>
inline constexpr bool kVecOpOk<BitOr, T> = std::is_integral_v<T>;

/// A (T, Op) pair runs the vector tiers; everything else degrades to the
/// scalar entry of every dispatch table.
template <class Op, class T>
inline constexpr bool kVectorizable =
    kHasVectorExt && std::is_arithmetic_v<T> && !std::is_same_v<T, bool> && kVecOpOk<Op, T>;

#if MP_SIMD_VECTOR_EXT
/// Lane-wise op(a, b). The ternary-select forms mirror the scalar operators
/// in core/ops.hpp exactly (including NaN behaviour for Min/Max: the scalar
/// comparison decides, lane by lane).
template <SimdElement T, std::size_t W>
inline Vec<T, W> vapply(Plus, Vec<T, W> a, Vec<T, W> b) {
  return Vec<T, W>{a.v + b.v};
}
template <SimdElement T, std::size_t W>
inline Vec<T, W> vapply(Times, Vec<T, W> a, Vec<T, W> b) {
  return Vec<T, W>{a.v * b.v};
}
template <SimdElement T, std::size_t W>
inline Vec<T, W> vapply(Min, Vec<T, W> a, Vec<T, W> b) {
  return Vec<T, W>{b.v < a.v ? b.v : a.v};
}
template <SimdElement T, std::size_t W>
inline Vec<T, W> vapply(Max, Vec<T, W> a, Vec<T, W> b) {
  return Vec<T, W>{a.v < b.v ? b.v : a.v};
}
template <SimdElement T, std::size_t W>
inline Vec<T, W> vapply(BitAnd, Vec<T, W> a, Vec<T, W> b) {
  return Vec<T, W>{a.v & b.v};
}
template <SimdElement T, std::size_t W>
inline Vec<T, W> vapply(BitOr, Vec<T, W> a, Vec<T, W> b) {
  return Vec<T, W>{a.v | b.v};
}
#endif  // MP_SIMD_VECTOR_EXT

namespace detail {

/// In-register inclusive scan: log2(W) shift-and-combine steps. After step
/// s, lane i holds the combine of lanes [max(0, i - 2^s + 1), i] — the
/// shifted (earlier) operand is always on the left.
template <class Op, class T, std::size_t W>
inline Vec<T, W> scan_within(Vec<T, W> x, Vec<T, W> idv, Op op) {
  return [&]<std::size_t... Ss>(std::index_sequence<Ss...>) {
    Vec<T, W> r = x;
    ((r = vapply(op, shift_up<(std::size_t{1} << Ss)>(r, idv), r)), ...);
    return r;
  }(std::make_index_sequence<std::bit_width(W) - 1>{});
}

/// Order-preserving horizontal fold: adjacent lanes combine pairwise, so
/// every op() sees its left operand earlier in vector order.
template <class Op, class T, std::size_t W>
inline T fold_adjacent(Vec<T, W> x, Op op) {
  if constexpr (W == 2) {
    return op(x.lane(0), x.lane(1));
  } else {
    return fold_adjacent(vapply(op, even_lanes(x), odd_lanes(x)), op);
  }
}

/// Lane count of tier `bytes` for element T, floored at 2 for wide elements.
template <class T>
constexpr std::size_t lanes_of(std::size_t bytes) {
  return bytes / sizeof(T) < 2 ? 2 : bytes / sizeof(T);
}

// ---- scan family ------------------------------------------------------------

template <class T, class Op, std::size_t W>
T inclusive_scan_impl(T* p, std::size_t n, Op op) {
  const T id = op.template identity<T>();
  T acc = id;
  std::size_t i = 0;
  if constexpr (W > 1 && kVectorizable<Op, T>) {
    if (n >= 2 * W) {
      using V = Vec<T, W>;
      const V idv = V::broadcast(id);
      V carry = idv;
      for (; i + W <= n; i += W) {
        V x = V::load(p + i);
        x = vapply(op, carry, scan_within(x, idv, op));
        x.store(p + i);
        carry = V::broadcast(x.back());
      }
      acc = carry.lane(0);
    }
  }
  for (; i < n; ++i) {
    acc = op(acc, p[i]);
    p[i] = acc;
  }
  return acc;
}

template <class T, class Op, std::size_t W>
T exclusive_scan_seeded_impl(T* p, std::size_t n, T seed, Op op) {
  T acc = seed;
  std::size_t i = 0;
  if constexpr (W > 1 && kVectorizable<Op, T>) {
    if (n >= 2 * W) {
      using V = Vec<T, W>;
      const V idv = V::broadcast(op.template identity<T>());
      for (; i + W <= n; i += W) {
        const V y = scan_within(V::load(p + i), idv, op);  // inclusive within block
        const V e = shift_up<1>(y, idv);                   // exclusive within block
        vapply(op, V::broadcast(acc), e).store(p + i);
        acc = op(acc, y.back());
      }
    }
  }
  for (; i < n; ++i) {
    const T next = op(acc, p[i]);
    p[i] = acc;
    acc = next;
  }
  return acc;
}

template <class T, class Op, std::size_t W>
T reduce_impl(const T* p, std::size_t n, Op op) {
  T acc = op.template identity<T>();
  std::size_t i = 0;
  if constexpr (W > 1 && kVectorizable<Op, T>) {
    for (; i + W <= n; i += W) acc = op(acc, fold_adjacent(Vec<T, W>::load(p + i), op));
  }
  for (; i < n; ++i) acc = op(acc, p[i]);
  return acc;
}

// ---- elementwise sweeps -----------------------------------------------------

template <class T, std::size_t W>
void fill_impl(T* p, std::size_t n, T value) {
  std::size_t i = 0;
  if constexpr (W > 1 && kHasVectorExt && std::is_arithmetic_v<T> && !std::is_same_v<T, bool>) {
    const auto v = Vec<T, W>::broadcast(value);
    for (; i + W <= n; i += W) v.store(p + i);
  }
  for (; i < n; ++i) p[i] = value;
}

template <class T, class Op, std::size_t W>
void combine_impl(const T* a, const T* b, T* dst, std::size_t n, Op op) {
  std::size_t i = 0;
  if constexpr (W > 1 && kVectorizable<Op, T>) {
    for (; i + W <= n; i += W)
      vapply(op, Vec<T, W>::load(a + i), Vec<T, W>::load(b + i)).store(dst + i);
  }
  for (; i < n; ++i) dst[i] = op(a[i], b[i]);
}

// ---- column scans (chunked pass 2, batched across labels) -------------------

template <class T, class Op, std::size_t W>
void column_exclusive_scan_impl(T* matrix, std::size_t rows, std::size_t stride,
                                std::size_t col_begin, std::size_t col_end, T* reduction,
                                Op op) {
  const T id = op.template identity<T>();
  std::size_t c = col_begin;
  if constexpr (W > 1 && kVectorizable<Op, T>) {
    using V = Vec<T, W>;
    const V idv = V::broadcast(id);
    for (; c + W <= col_end; c += W) {
      V acc = idv;
      for (std::size_t r = 0; r < rows; ++r) {
        T* cell = matrix + r * stride + c;
        const V x = V::load(cell);
        acc.store(cell);
        acc = vapply(op, acc, x);
      }
      acc.store(reduction + c);
    }
  }
  for (; c < col_end; ++c) {
    T acc = id;
    for (std::size_t r = 0; r < rows; ++r) {
      T& cell = matrix[r * stride + c];
      const T next = op(acc, cell);
      cell = acc;
      acc = next;
    }
    reduction[c] = acc;
  }
}

template <class T, class Op, std::size_t W>
void column_reduce_impl(const T* matrix, std::size_t rows, std::size_t stride,
                        std::size_t col_begin, std::size_t col_end, T* reduction, Op op) {
  const T id = op.template identity<T>();
  std::size_t c = col_begin;
  if constexpr (W > 1 && kVectorizable<Op, T>) {
    using V = Vec<T, W>;
    const V idv = V::broadcast(id);
    for (; c + W <= col_end; c += W) {
      V acc = idv;
      for (std::size_t r = 0; r < rows; ++r)
        acc = vapply(op, acc, V::load(matrix + r * stride + c));
      acc.store(reduction + c);
    }
  }
  for (; c < col_end; ++c) {
    T acc = id;
    for (std::size_t r = 0; r < rows; ++r) acc = op(acc, matrix[r * stride + c]);
    reduction[c] = acc;
  }
}

// ---- histogram --------------------------------------------------------------

inline void histogram_scalar(const label_t* labels, std::size_t n, std::uint32_t* counts,
                             std::size_t) {
  for (std::size_t i = 0; i < n; ++i) ++counts[labels[i]];
}

/// Four interleaved sub-histograms: consecutive elements hit distinct count
/// tables, so a run of equal labels advances four independent dependency
/// chains instead of one store-to-load-forwarding chain. Falls back to the
/// plain loop when the sub-tables would cost more than they save.
inline void histogram_ilp(const label_t* labels, std::size_t n, std::uint32_t* counts,
                          std::size_t m) {
  if (n < 4 * (m + 64)) {  // zeroing + merging 3m counters must amortize
    histogram_scalar(labels, n, counts, m);
    return;
  }
  std::vector<std::uint32_t> sub(3 * m, 0);
  std::uint32_t* c1 = sub.data();
  std::uint32_t* c2 = c1 + m;
  std::uint32_t* c3 = c2 + m;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    ++counts[labels[i]];
    ++c1[labels[i + 1]];
    ++c2[labels[i + 2]];
    ++c3[labels[i + 3]];
  }
  for (; i < n; ++i) ++counts[labels[i]];
  for (std::size_t k = 0; k < m; ++k) counts[k] += c1[k] + c2[k] + c3[k];
}

// ---- banded bucket sweeps (fused chunked passes, batched tiny-n kernel) -----
//
// A "band" is a contiguous element range [bounds[b], bounds[b + 1]) with its
// own bucket array at bucket0 + b * bucket_stride. Bands are independent by
// contract: either each has a private bucket row (the chunked local matrix,
// stride m) or they share one array but touch disjoint label ranges (the
// coalesced tiny-n batch, stride 0). WAYS > 1 interleaves that many bands'
// recurrences in one loop — each band's own combine order is untouched, so
// per-band output is bit-identical to the WAYS == 1 reference for every
// element type. Governed runs checkpoint every kCancelCheckBlock elements.

/// One band of the Figure 2 recurrence; kWritePrefix selects the multiprefix
/// form (prefix[i] = bucket-before, the fused ROWSUMS+MULTISUMS sweep) vs
/// the accumulate-only multireduce form.
template <class T, class Op, bool kWritePrefix>
void band_sweep_ref(const T* values, const label_t* labels, std::size_t i, std::size_t end,
                    T* bucket, T* prefix, Op op, const RunContext* rc) {
  while (i < end) {
    checkpoint(rc);
    const std::size_t stop =
        rc != nullptr && end - i > kCancelCheckBlock ? i + kCancelCheckBlock : end;
    for (; i < stop; ++i) {
      T& cell = bucket[labels[i]];
      if constexpr (kWritePrefix) prefix[i] = cell;
      cell = op(cell, values[i]);
    }
  }
}

template <class T, class Op, std::size_t WAYS, bool kWritePrefix>
void banded_sweep_impl(const T* values, const label_t* labels, const std::size_t* bounds,
                       std::size_t bands, T* bucket0, std::size_t bucket_stride, T* prefix,
                       Op op, const RunContext* rc) {
  if constexpr (WAYS == 1) {
    for (std::size_t b = 0; b < bands; ++b)
      band_sweep_ref<T, Op, kWritePrefix>(values, labels, bounds[b], bounds[b + 1],
                                          bucket0 + b * bucket_stride, prefix, op, rc);
  } else {
    if (bands < WAYS) {
      banded_sweep_impl<T, Op, 1, kWritePrefix>(values, labels, bounds, bands, bucket0,
                                                bucket_stride, prefix, op, rc);
      return;
    }
    // WAYS cursors walk WAYS bands in lockstep; an exhausted cursor refills
    // from the next unstarted band. The interleaved loop runs the smallest
    // remaining length branch-free, so refill bookkeeping costs O(bands),
    // not O(n).
    std::size_t cur[WAYS];
    std::size_t band_end[WAYS];
    T* bucket[WAYS];
    for (std::size_t w = 0; w < WAYS; ++w) {
      cur[w] = bounds[w];
      band_end[w] = bounds[w + 1];
      bucket[w] = bucket0 + w * bucket_stride;
    }
    std::size_t next = WAYS;
    for (;;) {
      std::size_t run = band_end[0] - cur[0];
      for (std::size_t w = 1; w < WAYS; ++w) run = std::min(run, band_end[w] - cur[w]);
      if (rc != nullptr) {
        rc->checkpoint();
        run = std::min(run, kCancelCheckBlock);
      }
      for (std::size_t k = 0; k < run; ++k) {
        [&]<std::size_t... Ws>(std::index_sequence<Ws...>) {
          (([&] {
             const std::size_t i = cur[Ws] + k;
             T& cell = bucket[Ws][labels[i]];
             if constexpr (kWritePrefix) prefix[i] = cell;
             cell = op(cell, values[i]);
           }()),
           ...);
        }(std::make_index_sequence<WAYS>{});
      }
      bool starved = false;
      for (std::size_t w = 0; w < WAYS; ++w) {
        cur[w] += run;
        if (cur[w] == band_end[w]) {
          if (next < bands) {
            cur[w] = bounds[next];
            band_end[w] = bounds[next + 1];
            bucket[w] = bucket0 + next * bucket_stride;
            ++next;
          } else {
            starved = true;
          }
        }
      }
      if (starved) break;  // no band left to refill an empty lane
    }
    // Drain whatever the interleaved loop left in the other lanes.
    for (std::size_t w = 0; w < WAYS; ++w)
      band_sweep_ref<T, Op, kWritePrefix>(values, labels, cur[w], band_end[w], bucket[w],
                                          prefix, op, rc);
  }
}

// ---- rank scatter -----------------------------------------------------------

inline void rank_scatter_ref(const label_t* labels, std::size_t n, std::uint32_t* cursor,
                             std::uint32_t* order, std::size_t) {
  for (std::size_t i = 0; i < n; ++i)
    order[cursor[labels[i]]++] = static_cast<std::uint32_t>(i);
}

/// Software write-combining scatter: each class stages its indices in a
/// cache-line-sized buffer (16 × u32 = 64 bytes) and flushes whole lines to
/// `order`, so the store stream hits m compact L1/L2-resident buffer lines
/// instead of m scattered output cursors. Appends per class in the same
/// i-ascending order as the reference loop and leaves the same cursor end
/// state — output identical, byte for byte. Falls back to the reference loop
/// when the buffers cannot pay for themselves (small n/m) or would not be
/// cache-resident (m so large the buffers themselves thrash, exactly the
/// regime where they help least).
inline void rank_scatter_wc(const label_t* labels, std::size_t n, std::uint32_t* cursor,
                            std::uint32_t* order, std::size_t m) {
  constexpr std::size_t kLine = 16;  // one 64-byte cache line of u32 indices
  if (m < 8 || n < 8 * m || m * (kLine + 1) * sizeof(std::uint32_t) > l2_tile_bytes()) {
    rank_scatter_ref(labels, n, cursor, order, m);
    return;
  }
  std::vector<std::uint32_t> lines(m * kLine);
  std::vector<std::uint8_t> filled(m, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const label_t c = labels[i];
    std::uint32_t* line = lines.data() + std::size_t{c} * kLine;
    std::uint8_t& fill = filled[c];
    line[fill++] = static_cast<std::uint32_t>(i);
    if (fill == kLine) {
      std::uint32_t* dst = order + cursor[c];
      for (std::size_t k = 0; k < kLine; ++k) dst[k] = line[k];
      cursor[c] += kLine;
      fill = 0;
    }
  }
  for (std::size_t c = 0; c < m; ++c) {
    const std::uint32_t* line = lines.data() + c * kLine;
    std::uint32_t* dst = order + cursor[c];
    for (std::size_t k = 0; k < filled[c]; ++k) dst[k] = line[k];
    cursor[c] += filled[c];
  }
}

}  // namespace detail

// ---- dispatched entry points ------------------------------------------------
//
// Each entry point owns one function-pointer table indexed by SimdLevel;
// entry 0 is always the scalar reference. Callers default to the process
// active_level() — pass a level only to pin a tier (tests, benches).

/// In-place inclusive scan; returns the grand total.
template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
T inclusive_scan(std::span<T> data, Op op = {}, SimdLevel level = active_level()) {
  using Fn = T (*)(T*, std::size_t, Op);
  static constexpr std::array<Fn, kSimdLevelCount> kTable = {
      &detail::inclusive_scan_impl<T, Op, 1>,
      &detail::inclusive_scan_impl<T, Op, detail::lanes_of<T>(16)>,
      &detail::inclusive_scan_impl<T, Op, detail::lanes_of<T>(32)>,
      &detail::inclusive_scan_impl<T, Op, detail::lanes_of<T>(64)>,
  };
  return kTable[level_index(level)](data.data(), data.size(), op);
}

/// In-place exclusive scan seeded with `seed` (the partition method's block
/// offset); returns the combine of seed and all elements.
template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
T exclusive_scan_seeded(std::span<T> data, T seed, Op op = {},
                        SimdLevel level = active_level()) {
  using Fn = T (*)(T*, std::size_t, T, Op);
  static constexpr std::array<Fn, kSimdLevelCount> kTable = {
      &detail::exclusive_scan_seeded_impl<T, Op, 1>,
      &detail::exclusive_scan_seeded_impl<T, Op, detail::lanes_of<T>(16)>,
      &detail::exclusive_scan_seeded_impl<T, Op, detail::lanes_of<T>(32)>,
      &detail::exclusive_scan_seeded_impl<T, Op, detail::lanes_of<T>(64)>,
  };
  return kTable[level_index(level)](data.data(), data.size(), seed, op);
}

/// In-place exclusive scan from the identity; returns the grand total.
template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
T exclusive_scan(std::span<T> data, Op op = {}, SimdLevel level = active_level()) {
  return exclusive_scan_seeded<T, Op>(data, op.template identity<T>(), op, level);
}

/// Order-preserving reduction of a contiguous range.
template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
T reduce(std::span<const T> data, Op op = {}, SimdLevel level = active_level()) {
  using Fn = T (*)(const T*, std::size_t, Op);
  static constexpr std::array<Fn, kSimdLevelCount> kTable = {
      &detail::reduce_impl<T, Op, 1>,
      &detail::reduce_impl<T, Op, detail::lanes_of<T>(16)>,
      &detail::reduce_impl<T, Op, detail::lanes_of<T>(32)>,
      &detail::reduce_impl<T, Op, detail::lanes_of<T>(64)>,
  };
  return kTable[level_index(level)](data.data(), data.size(), op);
}

/// data[i] = value — the executors' identity-fill sweep.
template <class T>
void fill(std::span<T> data, T value, SimdLevel level = active_level()) {
  using Fn = void (*)(T*, std::size_t, T);
  static constexpr std::array<Fn, kSimdLevelCount> kTable = {
      &detail::fill_impl<T, 1>,
      &detail::fill_impl<T, detail::lanes_of<T>(16)>,
      &detail::fill_impl<T, detail::lanes_of<T>(32)>,
      &detail::fill_impl<T, detail::lanes_of<T>(64)>,
  };
  kTable[level_index(level)](data.data(), data.size(), value);
}

/// dst[i] = op(a[i], b[i]) — the reduction-extraction sweep
/// (op(spinesum, rowsum), vector order preserved lane-wise).
template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
void combine(std::span<const T> a, std::span<const T> b, std::span<T> dst, Op op = {},
             SimdLevel level = active_level()) {
  using Fn = void (*)(const T*, const T*, T*, std::size_t, Op);
  static constexpr std::array<Fn, kSimdLevelCount> kTable = {
      &detail::combine_impl<T, Op, 1>,
      &detail::combine_impl<T, Op, detail::lanes_of<T>(16)>,
      &detail::combine_impl<T, Op, detail::lanes_of<T>(32)>,
      &detail::combine_impl<T, Op, detail::lanes_of<T>(64)>,
  };
  kTable[level_index(level)](a.data(), b.data(), dst.data(), dst.size(), op);
}

/// Exclusive scan down each column c in [col_begin, col_end) of a row-major
/// rows × stride matrix, writing each column's total to reduction[c]. The
/// chunked strategy's pass-2 recurrence, batched W labels at a time.
template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
void column_exclusive_scan(T* matrix, std::size_t rows, std::size_t stride,
                           std::size_t col_begin, std::size_t col_end, T* reduction,
                           Op op = {}, SimdLevel level = active_level()) {
  using Fn = void (*)(T*, std::size_t, std::size_t, std::size_t, std::size_t, T*, Op);
  static constexpr std::array<Fn, kSimdLevelCount> kTable = {
      &detail::column_exclusive_scan_impl<T, Op, 1>,
      &detail::column_exclusive_scan_impl<T, Op, detail::lanes_of<T>(16)>,
      &detail::column_exclusive_scan_impl<T, Op, detail::lanes_of<T>(32)>,
      &detail::column_exclusive_scan_impl<T, Op, detail::lanes_of<T>(64)>,
  };
  kTable[level_index(level)](matrix, rows, stride, col_begin, col_end, reduction, op);
}

/// Column reductions only (the multireduce form of the above).
template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
void column_reduce(const T* matrix, std::size_t rows, std::size_t stride,
                   std::size_t col_begin, std::size_t col_end, T* reduction, Op op = {},
                   SimdLevel level = active_level()) {
  using Fn = void (*)(const T*, std::size_t, std::size_t, std::size_t, std::size_t, T*, Op);
  static constexpr std::array<Fn, kSimdLevelCount> kTable = {
      &detail::column_reduce_impl<T, Op, 1>,
      &detail::column_reduce_impl<T, Op, detail::lanes_of<T>(16)>,
      &detail::column_reduce_impl<T, Op, detail::lanes_of<T>(32)>,
      &detail::column_reduce_impl<T, Op, detail::lanes_of<T>(64)>,
  };
  kTable[level_index(level)](matrix, rows, stride, col_begin, col_end, reduction, op);
}

/// The tier the chunked pass-2 column kernels (column_exclusive_scan /
/// column_reduce) should dispatch on, chosen per call from the active tier
/// and the matrix height. Unlike the contiguous sweeps above, these kernels
/// stride a full row (stride × sizeof(T) bytes) between every vector load,
/// so wider batches buy no extra locality — and at 512 bits the batch's
/// cache-line span makes the strided walk a net loss (measured ~0.92x vs
/// scalar at n=2^20 on an AVX-512 host; see BENCH_simd.json's
/// chunked_speedup and the bench gate asserting >= 1.0). A matrix under two
/// rows has no cross-chunk recurrence to batch at all. Every tier computes
/// bit-identical results (each column's combine order is fixed), so this is
/// purely a performance choice.
inline SimdLevel column_kernel_level(SimdLevel active, std::size_t rows) {
  if (rows < 2) return SimdLevel::kScalar;
  if (active == SimdLevel::k512) return SimdLevel::k256;
  return active;
}

/// counts[l] += #occurrences of l — the counting-sort histogram. Labels must
/// be < m (validate first: max_label / validate_labels); counts has m slots.
inline void histogram(std::span<const label_t> labels, std::uint32_t* counts, std::size_t m,
                      SimdLevel level = active_level()) {
  using Fn = void (*)(const label_t*, std::size_t, std::uint32_t*, std::size_t);
  static constexpr std::array<Fn, kSimdLevelCount> kTable = {
      &detail::histogram_scalar,
      &detail::histogram_ilp,
      &detail::histogram_ilp,
      &detail::histogram_ilp,
  };
  kTable[level_index(level)](labels.data(), labels.size(), counts, m);
}

/// order[cursor[labels[i]]++] = i — the counting-sort cursor scatter,
/// branch-free (labels pre-validated). Sequential per class by construction:
/// each slot depends on the cursor's exact running value. The scalar tier is
/// the plain reference loop; the vector tiers stage indices in software
/// write-combining line buffers (detail::rank_scatter_wc) so the scattered
/// stores become sequential cache-line writes — identical output and cursor
/// end state either way.
inline void rank_scatter(std::span<const label_t> labels, std::uint32_t* cursor,
                         std::uint32_t* order, std::size_t m,
                         SimdLevel level = active_level()) {
  using Fn = void (*)(const label_t*, std::size_t, std::uint32_t*, std::uint32_t*,
                      std::size_t);
  static constexpr std::array<Fn, kSimdLevelCount> kTable = {
      &detail::rank_scatter_ref,
      &detail::rank_scatter_wc,
      &detail::rank_scatter_wc,
      &detail::rank_scatter_wc,
  };
  kTable[level_index(level)](labels.data(), labels.size(), cursor, order, m);
}

/// Bands each chunk should split into at a given tier — the supply of
/// independent recurrences the banded kernels below interleave (their vector
/// slots keep 4 in flight; lanes refill from the remaining bands as they
/// drain). At the scalar tier there is nothing to interleave, so the factor
/// is 1 and the reference layout stands. Two measured constraints shape the
/// value (AVX-512 host, n=2^20, m=512, run-of-32 labels):
///   * more in-flight streams stop paying almost immediately — the fused
///     sweep walks 3 streams per band (labels, values, prefix), and past
///     ~12-16 concurrent streams the L2 prefetchers drop them;
///   * the factor must not be a power of two: equal bands of a power-of-two
///     n land a power-of-two byte stride apart, so every band's cursor maps
///     to the same cache sets and the streams evict each other (measured 3x
///     slower at 8 bands than at 12 on otherwise identical code).
inline constexpr std::size_t sweep_band_factor(SimdLevel level) {
  return level == SimdLevel::kScalar ? 1 : 12;
}

/// Fused multiprefix bucket sweep over independent bands: for band b and
/// element i in [bounds[b], bounds[b+1]), prefix[i] = cell-before and the
/// cell accumulates values[i], with band b's bucket array at
/// bucket0 + b * bucket_stride (stride m = the chunked local matrix; stride
/// 0 = one shared array whose label ranges the bands must not share). Seeded
/// sweeps fall out of pre-loaded bucket arrays — the chunked pass 3 seeds
/// each row with its pass-2 offsets. Per-band results are bit-identical at
/// every tier; governed runs checkpoint every kCancelCheckBlock elements.
template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
void banded_bucket_sweep(const T* values, const label_t* labels, const std::size_t* bounds,
                         std::size_t bands, T* bucket0, std::size_t bucket_stride, T* prefix,
                         Op op = {}, const RunContext* rc = nullptr,
                         SimdLevel level = active_level()) {
  using Fn = void (*)(const T*, const label_t*, const std::size_t*, std::size_t, T*,
                      std::size_t, T*, Op, const RunContext*);
  static constexpr std::array<Fn, kSimdLevelCount> kTable = {
      &detail::banded_sweep_impl<T, Op, 1, true>,
      &detail::banded_sweep_impl<T, Op, 4, true>,
      &detail::banded_sweep_impl<T, Op, 4, true>,
      &detail::banded_sweep_impl<T, Op, 4, true>,
  };
  kTable[level_index(level)](values, labels, bounds, bands, bucket0, bucket_stride, prefix,
                             op, rc);
}

/// Accumulate-only form of banded_bucket_sweep (the ROWSUMS / multireduce
/// sweep): cells accumulate, nothing is written per element.
template <class T, class Op = Plus>
  requires AssociativeOp<Op, T>
void banded_bucket_accumulate(const T* values, const label_t* labels,
                              const std::size_t* bounds, std::size_t bands, T* bucket0,
                              std::size_t bucket_stride, Op op = {},
                              const RunContext* rc = nullptr,
                              SimdLevel level = active_level()) {
  using Fn = void (*)(const T*, const label_t*, const std::size_t*, std::size_t, T*,
                      std::size_t, T*, Op, const RunContext*);
  static constexpr std::array<Fn, kSimdLevelCount> kTable = {
      &detail::banded_sweep_impl<T, Op, 1, false>,
      &detail::banded_sweep_impl<T, Op, 4, false>,
      &detail::banded_sweep_impl<T, Op, 4, false>,
      &detail::banded_sweep_impl<T, Op, 4, false>,
  };
  kTable[level_index(level)](values, labels, bounds, bands, bucket0, bucket_stride, nullptr,
                             op, rc);
}

/// Maximum label of a non-empty vector — the one up-front range check that
/// replaces per-element MP_REQUIREs in the sweep loops.
inline label_t max_label(std::span<const label_t> labels, SimdLevel level = active_level()) {
  return reduce<label_t, Max>(labels, Max{}, level);
}

}  // namespace mp::simd
