#include "simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>

#include "simd/vec.hpp"

namespace mp::simd {

namespace {

// Programmatic override; -1 = unset, else the SimdLevel value.
std::atomic<int> g_override{-1};

SimdLevel env_or_detected() {
  static const SimdLevel level = [] {
    if (const char* env = std::getenv("MP_SIMD_LEVEL")) {
      if (const auto parsed = parse_simd_level(env)) return *parsed;
    }
    return detected_level();
  }();
  return level;
}

}  // namespace

const char* to_string(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::k128: return "128";
    case SimdLevel::k256: return "256";
    case SimdLevel::k512: return "512";
  }
  return "unknown";
}

std::optional<SimdLevel> parse_simd_level(std::string_view name) {
  if (name == "scalar" || name == "none") return SimdLevel::kScalar;
  if (name == "128" || name == "sse2" || name == "sse") return SimdLevel::k128;
  if (name == "256" || name == "avx2") return SimdLevel::k256;
  if (name == "512" || name == "avx512") return SimdLevel::k512;
  return std::nullopt;
}

SimdLevel detected_level() {
  static const SimdLevel level = [] {
    if constexpr (!kHasVectorExt) return SimdLevel::kScalar;
#if defined(__x86_64__) || defined(__i386__)
    SimdLevel best = SimdLevel::k128;  // SSE2 is the x86-64 baseline
#if defined(__AVX2__)
    if (__builtin_cpu_supports("avx2")) best = SimdLevel::k256;
#endif
#if defined(__AVX512F__) && defined(__AVX512BW__)
    if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw"))
      best = SimdLevel::k512;
#endif
    return best;
#else
    // Non-x86 with vector extensions (e.g. AArch64 NEON): 128-bit lanes are
    // the universally profitable tier; wider needs target-specific tuning.
    return SimdLevel::k128;
#endif
  }();
  return level;
}

SimdLevel active_level() {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SimdLevel>(forced);
  return env_or_detected();
}

void set_active_level(std::optional<SimdLevel> level) {
  g_override.store(level ? static_cast<int>(*level) : -1, std::memory_order_relaxed);
}

std::size_t l2_tile_bytes() {
  if (const char* env = std::getenv("MP_L2_TILE_BYTES")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env && parsed != 0) return static_cast<std::size_t>(parsed);
  }
  return std::size_t{512} * 1024;
}

std::size_t l2_tile_cols(std::size_t rows, std::size_t elem_size) {
  const std::size_t col_bytes = rows * elem_size;
  if (col_bytes == 0) return 1;
  const std::size_t cols = l2_tile_bytes() / col_bytes;
  return cols == 0 ? 1 : cols;
}

ScopedSimdLevel::ScopedSimdLevel(SimdLevel level)
    : previous_(g_override.exchange(static_cast<int>(level), std::memory_order_relaxed)) {}

ScopedSimdLevel::~ScopedSimdLevel() {
  g_override.store(previous_, std::memory_order_relaxed);
}

}  // namespace mp::simd
