// Runtime selection of the SIMD kernel tier.
//
// Every kernel in simd/kernels.hpp is compiled at four lane widths — scalar,
// 128-bit, 256-bit and 512-bit — and dispatched through a function-pointer
// table indexed by `SimdLevel`. The default level is resolved once per
// process, cpuid-style:
//
//   detected_level()  widest tier that is both compiled for (the target ISA
//                     macros __AVX2__/__AVX512F__; see MP_ENABLE_NATIVE) and
//                     supported by the running CPU (__builtin_cpu_supports).
//                     Capped at 128-bit in portable builds: wider generic
//                     vectors are legal there but lower to split SSE2 ops,
//                     whose cross-lane shuffles are not worth it.
//   MP_SIMD_LEVEL     environment override, read once: "scalar", "128"/
//                     "sse2", "256"/"avx2", "512"/"avx512" ("auto" = unset).
//   set_active_level  programmatic override (Engine option, tests). The
//                     ScopedSimdLevel guard is what the differential tests
//                     use to pin each tier in turn.
//
// Precedence: set_active_level > MP_SIMD_LEVEL > detected_level. Forcing a
// tier above detected_level() is functionally safe — the portable lowering
// executes on any CPU the binary targets — it only forgoes the performance
// reasoning above. That is what makes "fuzz every level on every host"
// possible.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace mp::simd {

enum class SimdLevel : unsigned char {
  kScalar = 0,  // plain scalar loops (the pre-SIMD reference path)
  k128 = 1,     // 16-byte lanes (SSE2 / NEON class)
  k256 = 2,     // 32-byte lanes (AVX2 class)
  k512 = 3,     // 64-byte lanes (AVX-512 class)
};

inline constexpr std::size_t kSimdLevelCount = 4;

constexpr std::size_t level_index(SimdLevel l) { return static_cast<std::size_t>(l); }

const char* to_string(SimdLevel level);

/// Parses "scalar", "128"/"sse2", "256"/"avx2", "512"/"avx512"; nullopt for
/// anything else (including "auto", which means "no override").
std::optional<SimdLevel> parse_simd_level(std::string_view name);

/// Widest tier profitable on this (build target, running CPU) pair.
SimdLevel detected_level();

/// The tier kernels dispatch on by default: the programmatic override if
/// set, else the MP_SIMD_LEVEL environment override, else detected_level().
SimdLevel active_level();

/// Sets (or with nullopt clears) the process-wide programmatic override.
void set_active_level(std::optional<SimdLevel> level);

/// Byte budget one cache-partitioned kernel tile should occupy — the L2
/// working-set target of the chunked pass-2 column walk and the
/// write-combining scatter's buffer cap. Defaults to a conservative half of
/// a typical per-core L2 (512 KiB); override with the MP_L2_TILE_BYTES
/// environment variable (plain byte count). Re-read on every call so tests
/// can flip the override between runs — one getenv next to a whole-matrix
/// pass is noise.
std::size_t l2_tile_bytes();

/// Column count of one pass-2 tile of a rows × m bucket matrix with
/// `elem_size`-byte elements: the widest label tile whose rows-deep working
/// set fits l2_tile_bytes(), floored at one column. Purely a blocking
/// choice — every tile boundary computes bit-identical results (each
/// column's combine order is fixed), so any override is safe.
std::size_t l2_tile_cols(std::size_t rows, std::size_t elem_size);

/// RAII pin of the active level — test/bench helper. Not safe against
/// concurrent scopes on different threads (the override is process-wide).
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level);
  ~ScopedSimdLevel();
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  int previous_;  // encoded prior override (-1 = none)
};

}  // namespace mp::simd
