// Fault injection for the thread pool and the allocator seam — making
// failure paths testable.
//
// The pool's recovery guarantees (exactly one exception surfaces on the
// caller, the pool is reusable afterwards, nested run() is rejected instead
// of deadlocking) are only guarantees if they are exercised. A FaultInjector
// armed on a ThreadPool is invoked on every lane of every run() and may
// throw or delay, simulating a lane that faults mid-phase or a straggler —
// the two failure modes a production collective has to survive. The same
// injector can also be armed on the process-wide allocation seam
// (set_alloc_fault_injector): Workspace::acquire and the strategies' own
// scratch allocations call notify_alloc() first, so scripted std::bad_alloc
// exercises the budget/degradation machinery without actually exhausting
// the heap.
//
// ScriptedFaultInjector covers the canonical scripts:
//   * throw-on-lane-k      — lane k throws MpError(throw_error), default
//                            kExecutionFault (kPoolFailure scripts the
//                            transient-retry path);
//   * delay-on-lane-k      — lane k sleeps, exposing straggler/completion
//                            races to TSan;
//   * delay-all-lanes      — every lane sleeps: deadline pressure, making a
//                            short RunContext deadline expire mid-run;
//   * fail-nth-run         — only the nth run() since arming faults, so a
//                            multi-phase algorithm can be failed mid-stream
//                            (e.g. in the middle of the ROWSUMS column loop);
//   * fail-nth-alloc       — the nth notify_alloc() since arming throws
//                            std::bad_alloc (persistently, if asked).
// Scripts compose: restricting to a run index applies to the throw and the
// delays.
//
// Arming is test-scoped state; use ScopedFaultInjector so a failing test
// cannot leak an armed injector into later suites.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <new>
#include <optional>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "parallel/thread_pool.hpp"

namespace mp {

/// Hook invoked by ThreadPool::run() on every lane before the job body, and
/// (when armed on the allocation seam) by scratch allocation sites.
/// `run_index` counts run() calls since the injector was armed (0-based).
/// Implementations may throw (the pool propagates exactly one exception to
/// the caller) or block (simulating stragglers). Must be thread-safe: lanes
/// call concurrently.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  virtual void on_lane(std::size_t run_index, std::size_t lane) = 0;
  /// Invoked before a governed scratch allocation of `bytes`; may throw
  /// std::bad_alloc to simulate memory pressure. Default: no fault.
  virtual void on_alloc(std::size_t bytes) { (void)bytes; }
  /// Invoked before a ChunkSource read of chunk `chunk_index`
  /// (stream/session.hpp calls notify_io ahead of every read attempt); may
  /// throw MpError(kIoError) to simulate a failed read. Default: no fault.
  virtual void on_io(std::size_t chunk_index) { (void)chunk_index; }
};

// ---- process-wide allocation seam -----------------------------------------

namespace detail {
inline std::atomic<FaultInjector*>& alloc_injector_slot() {
  static std::atomic<FaultInjector*> slot{nullptr};
  return slot;
}
}  // namespace detail

/// Arms (or, with nullptr, disarms) the allocation-fault seam; returns the
/// previously armed injector so scopes can nest. The injector must outlive
/// its arming.
inline FaultInjector* set_alloc_fault_injector(FaultInjector* injector) {
  return detail::alloc_injector_slot().exchange(injector, std::memory_order_acq_rel);
}

/// Called by scratch allocation sites (Workspace::acquire, the chunked
/// algorithm's bucket matrix) before allocating `bytes`. One relaxed load
/// when nothing is armed.
inline void notify_alloc(std::size_t bytes) {
  if (FaultInjector* injector = detail::alloc_injector_slot().load(std::memory_order_acquire))
    injector->on_alloc(bytes);
}

// ---- process-wide I/O seam ------------------------------------------------

namespace detail {
inline std::atomic<FaultInjector*>& io_injector_slot() {
  static std::atomic<FaultInjector*> slot{nullptr};
  return slot;
}
}  // namespace detail

/// Arms (or, with nullptr, disarms) the I/O-fault seam; returns the
/// previously armed injector so scopes can nest. The injector must outlive
/// its arming.
inline FaultInjector* set_io_fault_injector(FaultInjector* injector) {
  return detail::io_injector_slot().exchange(injector, std::memory_order_acq_rel);
}

/// Called by the stream session before every ChunkSource read attempt. One
/// relaxed load when nothing is armed.
inline void notify_io(std::size_t chunk_index) {
  if (FaultInjector* injector = detail::io_injector_slot().load(std::memory_order_acquire))
    injector->on_io(chunk_index);
}

/// Deterministic, script-driven injector. See file comment for the scripts.
class ScriptedFaultInjector : public FaultInjector {
 public:
  struct Script {
    /// Lane that throws MpError(throw_error). Empty = no throw.
    std::optional<std::size_t> throw_on_lane;
    /// Error code for throw_on_lane faults. kPoolFailure scripts the
    /// transient failure the retry policy absorbs; kExecutionFault (the
    /// default) scripts a lane fault the fallback chain handles.
    ErrorCode throw_error = ErrorCode::kExecutionFault;
    /// Lane that sleeps for `delay` before running. Empty = no delay.
    std::optional<std::size_t> delay_on_lane;
    /// Every lane sleeps for `delay` — deadline pressure for RunContext
    /// deadline tests (the run makes progress, just slowly).
    bool delay_all_lanes = false;
    std::chrono::microseconds delay{500};
    /// Restrict the lane script to the nth run() since arming (0-based).
    /// Empty = the script applies to every run.
    std::optional<std::size_t> only_on_run;
    /// The nth notify_alloc() since arming (0-based) throws std::bad_alloc.
    /// Empty = allocations never fault.
    std::optional<std::size_t> fail_alloc_after;
    /// With fail_alloc_after: every allocation from the nth on also fails
    /// (sustained memory pressure) instead of exactly one.
    bool fail_alloc_persistent = false;
    /// The nth notify_io() since arming (0-based) throws MpError(kIoError).
    /// Empty = reads never fault.
    std::optional<std::size_t> fail_io_after;
    /// With fail_io_after: how many consecutive reads fail from the nth on
    /// (a transient blip the retry policy can absorb). 0 = every read from
    /// the nth on fails (a dead disk; retries cannot save the run).
    std::size_t io_fail_count = 1;
  };

  explicit ScriptedFaultInjector(Script script) : script_(script) {}

  void on_lane(std::size_t run_index, std::size_t lane) override {
    if (script_.only_on_run && *script_.only_on_run != run_index) return;
    if (script_.delay_all_lanes ||
        (script_.delay_on_lane && *script_.delay_on_lane == lane))
      std::this_thread::sleep_for(script_.delay);
    if (script_.throw_on_lane && *script_.throw_on_lane == lane) {
      faults_.fetch_add(1, std::memory_order_relaxed);
      throw MpError(script_.throw_error,
                    "injected fault on lane " + std::to_string(lane) + " (run " +
                        std::to_string(run_index) + ")");
    }
  }

  void on_alloc(std::size_t bytes) override {
    (void)bytes;
    if (!script_.fail_alloc_after) return;
    const std::size_t index = alloc_index_.fetch_add(1, std::memory_order_relaxed);
    const bool hit = script_.fail_alloc_persistent ? index >= *script_.fail_alloc_after
                                                   : index == *script_.fail_alloc_after;
    if (hit) {
      alloc_faults_.fetch_add(1, std::memory_order_relaxed);
      throw std::bad_alloc();
    }
  }

  void on_io(std::size_t chunk_index) override {
    if (!script_.fail_io_after) return;
    const std::size_t index = io_index_.fetch_add(1, std::memory_order_relaxed);
    const bool hit = script_.io_fail_count == 0
                         ? index >= *script_.fail_io_after
                         : index >= *script_.fail_io_after &&
                               index < *script_.fail_io_after + script_.io_fail_count;
    if (hit) {
      io_faults_.fetch_add(1, std::memory_order_relaxed);
      throw MpError(ErrorCode::kIoError,
                    "injected I/O fault reading chunk " + std::to_string(chunk_index) +
                        " (read " + std::to_string(index) + ")");
    }
  }

  /// Number of lane faults actually injected so far.
  std::size_t faults() const { return faults_.load(std::memory_order_relaxed); }
  /// Number of allocation faults actually injected so far.
  std::size_t alloc_faults() const { return alloc_faults_.load(std::memory_order_relaxed); }
  /// Number of I/O faults actually injected so far.
  std::size_t io_faults() const { return io_faults_.load(std::memory_order_relaxed); }

 private:
  Script script_;
  std::atomic<std::size_t> faults_{0};
  std::atomic<std::size_t> alloc_index_{0};
  std::atomic<std::size_t> alloc_faults_{0};
  std::atomic<std::size_t> io_index_{0};
  std::atomic<std::size_t> io_faults_{0};
};

/// RAII arming of a FaultInjector on a pool and/or the allocation seam.
/// Disarms (and restores the previous alloc injector) on destruction, so a
/// throwing test body cannot poison later suites with a still-armed
/// injector — the state-leak bug the scope guards in the fault tests used
/// to hand-roll.
class ScopedFaultInjector {
 public:
  /// Arms `injector` on `pool` lanes; with arm_alloc, also on the
  /// process-wide allocation seam; with arm_io, also on the process-wide
  /// I/O seam. Pass pool = nullptr for seam-only arming.
  ScopedFaultInjector(ThreadPool* pool, FaultInjector& injector, bool arm_alloc = false,
                      bool arm_io = false)
      : pool_(pool) {
    if (pool_ != nullptr) pool_->set_fault_injector(&injector);
    if (arm_alloc) {
      prev_alloc_ = set_alloc_fault_injector(&injector);
      armed_alloc_ = true;
    }
    if (arm_io) {
      prev_io_ = set_io_fault_injector(&injector);
      armed_io_ = true;
    }
  }
  ScopedFaultInjector(ThreadPool& pool, FaultInjector& injector, bool arm_alloc = false,
                      bool arm_io = false)
      : ScopedFaultInjector(&pool, injector, arm_alloc, arm_io) {}

  ~ScopedFaultInjector() {
    if (pool_ != nullptr) pool_->set_fault_injector(nullptr);
    if (armed_alloc_) set_alloc_fault_injector(prev_alloc_);
    if (armed_io_) set_io_fault_injector(prev_io_);
  }

  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

 private:
  ThreadPool* pool_ = nullptr;
  FaultInjector* prev_alloc_ = nullptr;
  bool armed_alloc_ = false;
  FaultInjector* prev_io_ = nullptr;
  bool armed_io_ = false;
};

}  // namespace mp
