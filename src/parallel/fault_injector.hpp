// Fault injection for the thread pool — making failure paths testable.
//
// The pool's recovery guarantees (exactly one exception surfaces on the
// caller, the pool is reusable afterwards, nested run() is rejected instead
// of deadlocking) are only guarantees if they are exercised. A FaultInjector
// armed on a ThreadPool is invoked on every lane of every run() and may
// throw or delay, simulating a lane that faults mid-phase or a straggler —
// the two failure modes a production collective has to survive.
//
// ScriptedFaultInjector covers the canonical scripts:
//   * throw-on-lane-k      — lane k throws MpError(kExecutionFault);
//   * delay-on-lane-k      — lane k sleeps, exposing straggler/completion
//                            races to TSan;
//   * fail-nth-run         — only the nth run() since arming faults, so a
//                            multi-phase algorithm can be failed mid-stream
//                            (e.g. in the middle of the ROWSUMS column loop).
// Scripts compose: restricting to a run index applies to both the throw and
// the delay.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <optional>
#include <string>
#include <thread>

#include "common/error.hpp"

namespace mp {

/// Hook invoked by ThreadPool::run() on every lane before the job body.
/// `run_index` counts run() calls since the injector was armed (0-based).
/// Implementations may throw (the pool propagates exactly one exception to
/// the caller) or block (simulating stragglers). Must be thread-safe: lanes
/// call concurrently.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  virtual void on_lane(std::size_t run_index, std::size_t lane) = 0;
};

/// Deterministic, script-driven injector. See file comment for the scripts.
class ScriptedFaultInjector : public FaultInjector {
 public:
  struct Script {
    /// Lane that throws MpError(kExecutionFault). Empty = no throw.
    std::optional<std::size_t> throw_on_lane;
    /// Lane that sleeps for `delay` before running. Empty = no delay.
    std::optional<std::size_t> delay_on_lane;
    std::chrono::microseconds delay{500};
    /// Restrict the script to the nth run() since arming (0-based).
    /// Empty = the script applies to every run.
    std::optional<std::size_t> only_on_run;
  };

  explicit ScriptedFaultInjector(Script script) : script_(script) {}

  void on_lane(std::size_t run_index, std::size_t lane) override {
    if (script_.only_on_run && *script_.only_on_run != run_index) return;
    if (script_.delay_on_lane && *script_.delay_on_lane == lane)
      std::this_thread::sleep_for(script_.delay);
    if (script_.throw_on_lane && *script_.throw_on_lane == lane) {
      faults_.fetch_add(1, std::memory_order_relaxed);
      throw MpError(ErrorCode::kExecutionFault,
                    "injected fault on lane " + std::to_string(lane) + " (run " +
                        std::to_string(run_index) + ")");
    }
  }

  /// Number of faults actually injected so far.
  std::size_t faults() const { return faults_.load(std::memory_order_relaxed); }

 private:
  Script script_;
  std::atomic<std::size_t> faults_{0};
};

}  // namespace mp
