// A fixed-size fork/join thread pool — the substrate behind the paper's
// `pardo` construct.
//
// Design: the pool owns `num_threads() - 1` workers plus the calling thread.
// `run(k, fn)` invokes fn(worker_index) on k lanes and blocks until all lanes
// finish — a synchronous parallel step, matching the PRAM-style execution the
// paper assumes. Exceptions thrown by any lane are captured and the first one
// is rethrown on the caller.
//
// Hardening (see common/error.hpp):
//   * run() from inside a pool lane would deadlock (the caller lane would
//     wait on workers that are waiting on it); reentrancy is detected and
//     rejected with MpError(kPoolFailure) instead.
//   * run() from several *distinct* threads is safe: the pool has one job
//     slot, so concurrent external dispatches serialize on a dispatch mutex
//     (first come, first served). This is what lets the async serving
//     frontend's workers share one pool — before it, concurrent run() calls
//     corrupted the fork/join accounting.
//   * The captured-error slot is consumed before rethrow, so a throwing job
//     never leaks state into the next run() — the pool is always reusable
//     after a failure (regression-tested).
//   * An optional FaultInjector is invoked on every lane of every run(),
//     making the two guarantees above (and straggler behaviour) testable.
//
// The pool is intentionally simple (no work stealing): multiprefix's phases
// are statically load-balanced, so static partitioning in parallel_for.hpp is
// both faster and easier to reason about than a dynamic scheduler.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mp {

class FaultInjector;
class RunContext;

class ThreadPool {
 public:
  /// Creates a pool that executes work on `threads` lanes (>= 1). Lane 0 is
  /// the calling thread; `threads - 1` workers are spawned.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return lanes_; }

  /// Runs fn(lane) for lane in [0, lanes) and blocks until all complete.
  /// If any lane throws, the first exception is rethrown here after joining,
  /// and the pool remains fully usable. Calling run() from inside a lane of
  /// this pool throws MpError(kPoolFailure) — the nested job would deadlock.
  void run(const std::function<void(std::size_t)>& fn);

  /// The non-allocating fork/join primitive underneath run(): publishes a
  /// plain (function pointer, context) pair to the per-pool job slot instead
  /// of materializing a std::function. A capturing parallel_for lambda
  /// exceeds libstdc++'s 16-byte small-object buffer, so the std::function
  /// route heap-allocates on *every* fork — measurable when the parallel
  /// executor forks once per spinetree level. parallel_for.hpp builds on
  /// this: the caller keeps the real body on its stack and passes a
  /// captureless trampoline. Same blocking, exception and reentrancy
  /// semantics as run().
  using RawFn = void (*)(void* ctx, std::size_t lane);
  void run_raw(RawFn fn, void* ctx);

  /// Governed forms: run a final cooperative checkpoint against `rc` before
  /// dispatching the fork (a cancelled or deadline-expired run never pays
  /// for another fork/join). rc may be null (ungoverned). In-flight lanes
  /// are not interrupted — cancellation inside a job is the job's business,
  /// via the checkpoints parallel_for.hpp plants at chunk boundaries.
  void run(const std::function<void(std::size_t)>& fn, const RunContext* rc);
  void run_raw(RawFn fn, void* ctx, const RunContext* rc);

  /// True when the current thread is executing inside a lane of this pool
  /// (the condition under which run() would be reentrant).
  bool in_lane() const;

  /// Arms (or, with nullptr, disarms) a fault injector: injector->on_lane()
  /// is invoked on every lane at the start of every subsequent run(), and
  /// the run counter restarts at 0. The injector must outlive its arming.
  /// Not thread-safe against concurrent run() — arm between jobs.
  void set_fault_injector(FaultInjector* injector);

  /// A process-wide default pool sized to the hardware concurrency.
  static ThreadPool& global();

 private:
  void worker_loop(std::size_t lane);
  void invoke(RawFn fn, void* ctx, std::size_t run_index, std::size_t lane);

  std::size_t lanes_;
  std::vector<std::thread> workers_;

  // Serializes whole fork/joins from distinct external threads (the job
  // slot below holds one job at a time). Never held by lane code, so a
  // lane driving a *different* pool cannot deadlock on it.
  std::mutex dispatch_mu_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  // The per-pool job slot, reused across forks (no per-run allocation).
  RawFn job_ = nullptr;
  void* job_ctx_ = nullptr;
  std::uint64_t epoch_ = 0;       // incremented per run(); wakes workers
  std::size_t remaining_ = 0;     // workers still running the current job
  bool shutdown_ = false;
  std::exception_ptr first_error_;

  FaultInjector* injector_ = nullptr;  // armed between jobs; read-only in run
  std::size_t run_index_ = 0;          // runs since the injector was armed
};

}  // namespace mp
