#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace mp {

ThreadPool::ThreadPool(std::size_t threads) : lanes_(threads) {
  MP_REQUIRE(threads >= 1, "pool needs at least one lane");
  workers_.reserve(lanes_ - 1);
  for (std::size_t lane = 1; lane < lanes_; ++lane)
    workers_.emplace_back([this, lane] { worker_loop(lane); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run(const std::function<void(std::size_t)>& fn) {
  if (lanes_ == 1) {  // no workers: degenerate synchronous execution
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    remaining_ = lanes_ - 1;
    first_error_ = nullptr;
    ++epoch_;
  }
  cv_start_.notify_all();

  std::exception_ptr caller_error;
  try {
    fn(0);  // lane 0 runs on the caller
  } catch (...) {
    caller_error = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
  if (caller_error) std::rethrow_exception(caller_error);
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::worker_loop(std::size_t lane) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    try {
      (*job)(lane);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) cv_done_.notify_one();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace mp
