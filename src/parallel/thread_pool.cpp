#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/run_context.hpp"
#include "obs/trace.hpp"
#include "parallel/fault_injector.hpp"

namespace mp {

namespace {

// The pool (if any) whose lane the current thread is executing. Workers set
// it for their lifetime; the caller thread sets it around its lane-0 stint.
// Distinct pools nest legally (an outer pool's lane may drive an inner
// pool), so this tracks the innermost pool only.
thread_local const ThreadPool* tl_current_pool = nullptr;

struct LaneScope {
  const ThreadPool* prev;
  explicit LaneScope(const ThreadPool* pool) : prev(tl_current_pool) {
    tl_current_pool = pool;
  }
  ~LaneScope() { tl_current_pool = prev; }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) : lanes_(threads) {
  MP_REQUIRE(threads >= 1, "pool needs at least one lane");
  workers_.reserve(lanes_ - 1);
  for (std::size_t lane = 1; lane < lanes_; ++lane)
    workers_.emplace_back([this, lane] { worker_loop(lane); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::in_lane() const { return tl_current_pool == this; }

void ThreadPool::set_fault_injector(FaultInjector* injector) {
  injector_ = injector;
  run_index_ = 0;
}

void ThreadPool::invoke(RawFn fn, void* ctx, std::size_t run_index, std::size_t lane) {
  if (injector_ != nullptr) injector_->on_lane(run_index, lane);
  fn(ctx, lane);
}

void ThreadPool::run(const std::function<void(std::size_t)>& fn) {
  // Convenience wrapper: the std::function stays on the caller's stack and is
  // reached through the context pointer — run() itself adds no allocation on
  // top of whatever the caller's std::function construction cost.
  run_raw(
      [](void* ctx, std::size_t lane) {
        (*static_cast<const std::function<void(std::size_t)>*>(ctx))(lane);
      },
      const_cast<std::function<void(std::size_t)>*>(&fn));
}

void ThreadPool::run(const std::function<void(std::size_t)>& fn, const RunContext* rc) {
  if (rc != nullptr) rc->checkpoint();
  run(fn);
}

void ThreadPool::run_raw(RawFn fn, void* ctx, const RunContext* rc) {
  if (rc != nullptr) rc->checkpoint();
  run_raw(fn, ctx);
}

void ThreadPool::run_raw(RawFn fn, void* ctx) {
  if (in_lane())
    throw MpError(ErrorCode::kPoolFailure,
                  "reentrant ThreadPool::run(): called from inside a lane of the same pool "
                  "(the nested job would deadlock waiting on its own lane)");
  // One fork/join span per pool dispatch, on the caller's thread; every
  // parallel_for / parallel_for_blocked funnels through here, so call sites
  // need no instrumentation of their own.
  obs::ScopedSpan fork_span(obs::active_tracer(), obs::Phase::kFork);
  // Concurrent external dispatchers (serving-frontend workers) take turns
  // at the single job slot; the uncontended cost is one atomic pair.
  std::lock_guard<std::mutex> dispatch_lock(dispatch_mu_);
  const std::size_t run_index = run_index_++;
  if (lanes_ == 1) {  // no workers: degenerate synchronous execution
    LaneScope scope(this);
    invoke(fn, ctx, run_index, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = fn;
    job_ctx_ = ctx;
    remaining_ = lanes_ - 1;
    first_error_ = nullptr;
    ++epoch_;
  }
  cv_start_.notify_all();

  std::exception_ptr caller_error;
  try {
    LaneScope scope(this);
    invoke(fn, ctx, run_index, 0);  // lane 0 runs on the caller
  } catch (...) {
    caller_error = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
  job_ctx_ = nullptr;
  // Consume the captured error before rethrowing so a throwing job leaves no
  // state behind: the next run() starts from a clean slate either way.
  std::exception_ptr lane_error = first_error_;
  first_error_ = nullptr;
  lock.unlock();
  if (caller_error) std::rethrow_exception(caller_error);
  if (lane_error) std::rethrow_exception(lane_error);
}

void ThreadPool::worker_loop(std::size_t lane) {
  LaneScope scope(this);
  std::uint64_t seen_epoch = 0;
  for (;;) {
    RawFn job = nullptr;
    void* ctx = nullptr;
    std::size_t run_index = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      job = job_;
      ctx = job_ctx_;
      run_index = run_index_ - 1;  // run_raw() bumped it before publishing
    }
    try {
      invoke(job, ctx, run_index, lane);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) cv_done_.notify_one();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace mp
