// `pardo` — statically partitioned parallel loops over index ranges.
//
// parallel_for(pool, begin, end, grain, body) splits [begin, end) into one
// contiguous chunk per lane and runs body(i) for every index. If the range is
// smaller than `grain`, the loop runs inline on the caller — forking threads
// for a 64-element row would cost more than the row itself (the same
// short-vector effect the paper's n_1/2 parameter captures).
//
// parallel_for_strided handles the paper's column sweeps, where the elements
// of a column are separated by the row length.
//
// All variants fork through ThreadPool::run_raw with the loop body kept on
// the caller's stack and a captureless trampoline in the pool's reusable job
// slot — no std::function, no heap allocation per fork. The parallel
// executor forks once per spinetree level, so this overhead used to be paid
// L times per multiprefix (bench/engine_amortization.cpp tracks it).
//
// Every variant takes an optional RunContext (common/run_context.hpp): when
// governed, each lane runs a cooperative checkpoint every kCancelCheckBlock
// indices, so a cancelled or deadline-expired loop throws within one
// chunk's latency. An exception from a worker-lane checkpoint surfaces on
// the caller through the pool's normal first-error channel. When rc is null
// (the default) the loops are byte-for-byte the ungoverned originals —
// governance costs one pointer test per fork.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/run_context.hpp"
#include "parallel/thread_pool.hpp"

namespace mp {

/// Default threshold below which parallel loops run inline.
inline constexpr std::size_t kDefaultGrain = 4096;

namespace detail {

/// Runs body(i) over [lo, hi) with a checkpoint every kCancelCheckBlock
/// indices when governed. The ungoverned path is the plain loop.
template <class Body>
void governed_index_loop(std::size_t lo, std::size_t hi, Body& body, const RunContext* rc) {
  if (rc == nullptr) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
    return;
  }
  while (lo < hi) {
    rc->checkpoint();
    const std::size_t stop = hi - lo > kCancelCheckBlock ? lo + kCancelCheckBlock : hi;
    for (std::size_t i = lo; i < stop; ++i) body(i);
    lo = stop;
  }
}

/// Runs body(lo2, hi2) over sub-blocks of [lo, hi) with a checkpoint before
/// each when governed; ungoverned, body is called exactly once on [lo, hi)
/// (the single-kernel-call shape SIMD callers rely on for speed).
template <class Body>
void governed_block_loop(std::size_t lo, std::size_t hi, Body& body, const RunContext* rc) {
  if (rc == nullptr) {
    body(lo, hi);
    return;
  }
  while (lo < hi) {
    rc->checkpoint();
    const std::size_t stop = hi - lo > kCancelCheckBlock ? lo + kCancelCheckBlock : hi;
    body(lo, stop);
    lo = stop;
  }
}

}  // namespace detail

template <class Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end, std::size_t grain,
                  Body&& body, const RunContext* rc = nullptr) {
  MP_ASSERT(begin <= end);
  const std::size_t count = end - begin;
  if (count == 0) return;
  const std::size_t lanes = pool.num_threads();
  if (lanes == 1 || count <= grain) {
    detail::governed_index_loop(begin, end, body, rc);
    return;
  }
  struct Ctx {
    std::size_t begin, end, chunk;
    Body* body;
    const RunContext* rc;
  };
  Ctx ctx{begin, end, (count + lanes - 1) / lanes, &body, rc};
  pool.run_raw(
      [](void* p, std::size_t lane) {
        const Ctx& c = *static_cast<const Ctx*>(p);
        const std::size_t lo = c.begin + lane * c.chunk;
        if (lo >= c.end) return;
        const std::size_t hi = lo + c.chunk < c.end ? lo + c.chunk : c.end;
        detail::governed_index_loop(lo, hi, *c.body, c.rc);
      },
      &ctx, rc);
}

/// Like parallel_for, but hands each lane its whole contiguous subrange as
/// body(lo, hi) — the shape SIMD kernels want (one kernel call per lane
/// instead of one lambda call per element). Governed runs split the
/// subrange at checkpoint boundaries, so a body must accept any partition
/// of its range (all in-tree callers are range-algebra sweeps that do).
template <class Body>
void parallel_for_blocked(ThreadPool& pool, std::size_t begin, std::size_t end,
                          std::size_t grain, Body&& body, const RunContext* rc = nullptr) {
  MP_ASSERT(begin <= end);
  const std::size_t count = end - begin;
  if (count == 0) return;
  const std::size_t lanes = pool.num_threads();
  if (lanes == 1 || count <= grain) {
    detail::governed_block_loop(begin, end, body, rc);
    return;
  }
  struct Ctx {
    std::size_t begin, end, chunk;
    Body* body;
    const RunContext* rc;
  };
  Ctx ctx{begin, end, (count + lanes - 1) / lanes, &body, rc};
  pool.run_raw(
      [](void* p, std::size_t lane) {
        const Ctx& c = *static_cast<const Ctx*>(p);
        const std::size_t lo = c.begin + lane * c.chunk;
        if (lo >= c.end) return;
        const std::size_t hi = lo + c.chunk < c.end ? lo + c.chunk : c.end;
        detail::governed_block_loop(lo, hi, *c.body, c.rc);
      },
      &ctx, rc);
}

template <class Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end, Body&& body,
                  const RunContext* rc = nullptr) {
  parallel_for(pool, begin, end, kDefaultGrain, std::forward<Body>(body), rc);
}

/// Runs body(i) for i in {begin, begin+stride, ...} with i < end, partitioned
/// across lanes. Used for the paper's column access pattern.
template <class Body>
void parallel_for_strided(ThreadPool& pool, std::size_t begin, std::size_t end,
                          std::size_t stride, std::size_t grain, Body&& body,
                          const RunContext* rc = nullptr) {
  MP_ASSERT(stride > 0);
  if (begin >= end) return;
  const std::size_t count = (end - begin + stride - 1) / stride;
  const std::size_t lanes = pool.num_threads();
  if (lanes == 1 || count <= grain) {
    auto at = [&](std::size_t k) { body(begin + k * stride); };
    detail::governed_index_loop(0, count, at, rc);
    return;
  }
  struct Ctx {
    std::size_t begin, stride, count, chunk;
    Body* body;
    const RunContext* rc;
  };
  Ctx ctx{begin, stride, count, (count + lanes - 1) / lanes, &body, rc};
  pool.run_raw(
      [](void* p, std::size_t lane) {
        const Ctx& c = *static_cast<const Ctx*>(p);
        const std::size_t first = lane * c.chunk;
        if (first >= c.count) return;
        const std::size_t last = first + c.chunk < c.count ? first + c.chunk : c.count;
        auto at = [&](std::size_t k) { (*c.body)(c.begin + k * c.stride); };
        detail::governed_index_loop(first, last, at, c.rc);
      },
      &ctx, rc);
}

/// Splits [0, n) into `parts` near-equal contiguous ranges; returns the
/// boundaries (parts + 1 entries, first 0, last n). Used by the chunked
/// multiprefix algorithm and by tests.
inline std::vector<std::size_t> partition_range(std::size_t n, std::size_t parts) {
  MP_REQUIRE(parts >= 1, "need at least one part");
  std::vector<std::size_t> bounds(parts + 1);
  for (std::size_t p = 0; p <= parts; ++p)
    bounds[p] = n / parts * p + std::min(p, n % parts);
  return bounds;
}

}  // namespace mp
