// `pardo` — statically partitioned parallel loops over index ranges.
//
// parallel_for(pool, begin, end, grain, body) splits [begin, end) into one
// contiguous chunk per lane and runs body(i) for every index. If the range is
// smaller than `grain`, the loop runs inline on the caller — forking threads
// for a 64-element row would cost more than the row itself (the same
// short-vector effect the paper's n_1/2 parameter captures).
//
// parallel_for_strided handles the paper's column sweeps, where the elements
// of a column are separated by the row length.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "parallel/thread_pool.hpp"

namespace mp {

/// Default threshold below which parallel loops run inline.
inline constexpr std::size_t kDefaultGrain = 4096;

template <class Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end, std::size_t grain,
                  Body&& body) {
  MP_ASSERT(begin <= end);
  const std::size_t count = end - begin;
  if (count == 0) return;
  const std::size_t lanes = pool.num_threads();
  if (lanes == 1 || count <= grain) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t chunk = (count + lanes - 1) / lanes;
  pool.run([&](std::size_t lane) {
    const std::size_t lo = begin + lane * chunk;
    if (lo >= end) return;
    const std::size_t hi = lo + chunk < end ? lo + chunk : end;
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

template <class Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end, Body&& body) {
  parallel_for(pool, begin, end, kDefaultGrain, std::forward<Body>(body));
}

/// Runs body(i) for i in {begin, begin+stride, ...} with i < end, partitioned
/// across lanes. Used for the paper's column access pattern.
template <class Body>
void parallel_for_strided(ThreadPool& pool, std::size_t begin, std::size_t end,
                          std::size_t stride, std::size_t grain, Body&& body) {
  MP_ASSERT(stride > 0);
  if (begin >= end) return;
  const std::size_t count = (end - begin + stride - 1) / stride;
  const std::size_t lanes = pool.num_threads();
  if (lanes == 1 || count <= grain) {
    for (std::size_t i = begin; i < end; i += stride) body(i);
    return;
  }
  const std::size_t chunk = (count + lanes - 1) / lanes;
  pool.run([&](std::size_t lane) {
    const std::size_t first = lane * chunk;
    if (first >= count) return;
    const std::size_t last = first + chunk < count ? first + chunk : count;
    for (std::size_t k = first; k < last; ++k) body(begin + k * stride);
  });
}

/// Splits [0, n) into `parts` near-equal contiguous ranges; returns the
/// boundaries (parts + 1 entries, first 0, last n). Used by the chunked
/// multiprefix algorithm and by tests.
inline std::vector<std::size_t> partition_range(std::size_t n, std::size_t parts) {
  MP_REQUIRE(parts >= 1, "need at least one part");
  std::vector<std::size_t> bounds(parts + 1);
  for (std::size_t p = 0; p <= parts; ++p)
    bounds[p] = n / parts * p + std::min(p, n % parts);
  return bounds;
}

}  // namespace mp
