// Hockney–Jesshope loop characterization by least squares (Table 3).
//
// The paper characterizes each vector loop by (t_e, n_1/2) such that
// t(n) = t_e (n + n_1/2). Given measured (length, seconds) samples, the
// model is linear in (t_e, t_e·n_1/2): ordinary least squares on
// t = a·n + b yields t_e = a and n_1/2 = b/a. Table 3's bench measures our
// loops the same way the paper measured the Cray's.
#pragma once

#include <cstddef>
#include <span>
#include <utility>

namespace mp::perf {

struct LoopFit {
  double te_seconds = 0.0;  // asymptotic time per element
  double n_half = 0.0;      // half-performance length
  double r_squared = 0.0;   // goodness of fit of the linear model

  double predict(std::size_t n) const {
    return te_seconds * (static_cast<double>(n) + n_half);
  }
};

/// Ordinary least squares of seconds = a·length + b over the samples.
/// Requires at least two samples with distinct lengths.
LoopFit fit_loop(std::span<const std::pair<std::size_t, double>> samples);

}  // namespace mp::perf
