#include "perf/fit.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace mp::perf {

LoopFit fit_loop(std::span<const std::pair<std::size_t, double>> samples) {
  MP_REQUIRE(samples.size() >= 2, "need at least two samples");
  const double count = static_cast<double>(samples.size());

  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (const auto& [n, t] : samples) {
    const double x = static_cast<double>(n);
    sx += x;
    sy += t;
    sxx += x * x;
    sxy += x * t;
    syy += t * t;
  }
  const double denom = count * sxx - sx * sx;
  MP_REQUIRE(denom > 0.0, "samples need distinct lengths");

  const double a = (count * sxy - sx * sy) / denom;  // slope = t_e
  const double b = (sy - a * sx) / count;            // intercept = t_e * n_1/2

  LoopFit fit;
  fit.te_seconds = a;
  fit.n_half = a != 0.0 ? b / a : 0.0;

  const double ss_tot = syy - sy * sy / count;
  double ss_res = 0.0;
  for (const auto& [n, t] : samples) {
    const double e = t - (a * static_cast<double>(n) + b);
    ss_res += e * e;
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace mp::perf
