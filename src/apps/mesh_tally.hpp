// Mesh-tally CMFD iterative solver — the flagship end-to-end application
// workload (ROADMAP item 3: the OpenMOC-shaped scenario).
//
// The paper positions multiprefix as the primitive behind irregular
// scientific kernels; CMFD (coarse-mesh finite difference) acceleration is
// the concrete production shape. A 2D structured mesh is swept by a fixed
// set of synthetic characteristic tracks; every outer iteration
//
//   (a) tallies per-segment surface currents into mesh surfaces — a
//       multireduce whose label vector (segment -> surface id) never
//       changes, so the spinetree plan is built once on sweep 1 and served
//       from the engine's plan cache for every sweep after (the §5.2.1
//       amortization argument, measured end to end by bench/mesh_tally);
//   (b) assembles the CMFD diffusion operator from the tallied currents
//       (the D-hat correction) and solves it with Jacobi inner iterations
//       whose SpMV is itself a multireduce over the fixed row-label vector
//       (paper Figure 12: gather the products, reduce by row);
//   (c) updates a k-eff-style eigenvalue estimate (power iteration) with a
//       relative-convergence loop.
//
// Each outer sweep runs under its own per-sweep RunContext deadline, so a
// stuck sweep fails loudly mid-loop with the engine's untouched-or-complete
// output guarantee instead of wedging the solve. With the transport
// perturbation (`anisotropy`) at zero the tallied currents equal the finite
// difference currents, the D-hat correction vanishes to roundoff, and the
// converged eigenvalue equals the analytic discrete buckling solution
// (analytic_keff()) — the test oracle. A nonzero perturbation exercises the
// real CMFD correction path.
//
// The tally pass can optionally be driven per-track through the serving
// frontend (MeshTallyConfig::frontend): every track is a tiny request
// (n = a few dozen segments), so a sweep becomes a burst of sub-1k submits
// that the frontend coalesces into the engine's fused batched tiny-n sweep
// — the PR 8 serving path on a real workload.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/labels.hpp"
#include "common/run_context.hpp"
#include "core/engine.hpp"
#include "obs/trace.hpp"

namespace mp::serve {
class Frontend;
}  // namespace mp::serve

namespace mp::apps {

struct MeshTallyConfig {
  /// Mesh shape: nx x ny cells of size `cell_size` (cm), zero-flux boundary.
  std::size_t nx = 32;
  std::size_t ny = 32;
  double cell_size = 1.0;

  /// One-group cross sections (uniform): diffusion coefficient, absorption
  /// and production. keff of the homogeneous problem is
  /// nu_fission / (absorption + D * buckling).
  double diffusion = 1.2;
  double absorption = 0.10;
  double nu_fission = 0.125;

  /// Relative amplitude of the deterministic per-segment transport
  /// perturbation. 0 makes the tally reproduce the finite-difference
  /// currents exactly (D-hat -> 0, keff -> analytic_keff()); a small
  /// nonzero value (~0.1) exercises the real CMFD correction.
  double anisotropy = 0.0;

  /// Track-set multiplier: the horizontal/vertical/diagonal families are
  /// laid down `track_repeat` times, scaling segments (tally n) without
  /// changing the surface count (tally m) — the knob the bench uses to set
  /// the n/m regime.
  std::size_t track_repeat = 1;
  bool diagonal_tracks = true;

  /// Outer (power) iteration controls: stop when |dk|/k < keff_tol.
  std::size_t max_outers = 1000;
  double keff_tol = 1e-8;
  /// Inner Jacobi controls: per outer, iterate until the residual norm
  /// drops below inner_tol * (initial residual norm), capped at max_inners.
  std::size_t max_inners = 200;
  double inner_tol = 1e-2;

  /// Strategy for both the tally multireduce and the SpMV multireduce.
  /// Plan-cache residency (the whole point of the fixed label structure)
  /// needs a plan-based strategy: kVectorized/kParallel, or kAuto once the
  /// recurring-labels detector promotes. Default kVectorized — at mesh-tally
  /// sizes kAuto would resolve the SpMV to the planless serial sweep.
  Strategy strategy = Strategy::kVectorized;

  /// Engine to dispatch through; null = Engine::global(). Pass a private
  /// engine to make plan_hits/plan_misses in MeshTallyStats exact.
  Engine* engine = nullptr;

  /// When set, the tally pass submits each track as its own tiny
  /// multireduce through the serving frontend (coalesced + fused batched
  /// sweep) instead of one engine call. Segment values are fixed-point
  /// quantized (see segment_values in mesh_tally.cpp), so even this
  /// differently-associated per-track fold reproduces the single-pass
  /// tally bit for bit.
  serve::Frontend* frontend = nullptr;

  /// Per-sweep deadline, armed at the start of every outer iteration and
  /// governing that sweep's tally and inner solve. Expiry throws
  /// MpError(kDeadlineExceeded) out of solve() with the solver state at the
  /// last completed outer.
  std::optional<std::chrono::steady_clock::duration> sweep_deadline;

  /// Governance counter block threaded into every sweep's RunContext.
  FallbackCounters* counters = nullptr;
  /// Span sink for the per-sweep phase spans (kTallySweep / kCmfdSolve /
  /// kEigenUpdate) and, via RunContext::tracer, every engine dispatch under
  /// them; null = the ambient tracer.
  obs::Tracer* tracer = nullptr;
};

/// Result of solve(). Plan-cache fields are deltas of the dispatching
/// engine's PlanCache::Stats across the solve — exact when the config names
/// a private engine, best-effort on a shared one.
struct MeshTallyStats {
  double keff = 1.0;
  double keff_delta = 1.0;  // |dk|/k of the last completed outer
  std::size_t outers = 0;
  std::size_t inners = 0;  // total Jacobi iterations across all outers
  bool converged = false;
  std::uint64_t tally_sweeps = 0;
  std::uint64_t plan_hits = 0;
  std::uint64_t plan_misses = 0;
  /// Misses observed after the first outer iteration — the residency
  /// contract: a fixed mesh means zero warm misses, and the bench gates
  /// warm_hit_rate (hits/(hits+misses) after outer 1) at >= 0.99.
  std::uint64_t warm_plan_misses = 0;
  double warm_hit_rate = 1.0;
};

class MeshTallySolver {
 public:
  explicit MeshTallySolver(MeshTallyConfig config);

  const MeshTallyConfig& config() const { return config_; }

  // -- Geometry ------------------------------------------------------------
  std::size_t cells() const { return config_.nx * config_.ny; }
  /// Tally class count m: (nx+1)*ny vertical + nx*(ny+1) horizontal faces.
  std::size_t surfaces() const { return surfaces_; }
  /// Tally element count n: total track segments across all tracks.
  std::size_t segments() const { return labels_.size(); }
  std::size_t tracks() const { return track_bounds_.size() - 1; }

  /// The fixed segment -> surface label vector (the tally's multireduce
  /// labels; identical every sweep, which is what keeps the plan resident).
  std::span<const label_t> tally_labels() const { return labels_; }
  /// Per-segment tally weights; the segments crossing any one surface have
  /// weights summing to 1, so tallying `weight * f(surface)` reconstructs f.
  std::span<const double> segment_weights() const { return weights_; }
  /// Segment range of track t is [track_bounds()[t], track_bounds()[t+1]).
  std::span<const std::size_t> track_bounds() const { return track_bounds_; }

  // -- One tally pass ------------------------------------------------------
  /// Tallies per-segment surface currents for `flux` (size cells()) into
  /// `currents` (size surfaces()) with an explicit strategy: one
  /// engine multireduce over tally_labels(). All surfaces() slots are
  /// written. `ctx` governs the run; on deadline/cancel expiry the engine's
  /// untouched-or-complete guarantee applies to `currents`.
  void tally_currents(std::span<const double> flux, std::span<double> currents,
                      Strategy strategy, const RunContext& ctx = RunContext::none());
  /// Config-routed form: uses config().strategy, or the per-track serving
  /// frontend path when config().frontend is set.
  void tally_currents(std::span<const double> flux, std::span<double> currents,
                      const RunContext& ctx = RunContext::none());

  // -- The outer loop ------------------------------------------------------
  /// Runs the tally / CMFD-solve / k-eff-update loop to convergence (or
  /// max_outers). Restartable: each call starts from a flat flux.
  MeshTallyStats solve();

  /// Flux and eigenvalue after the last solve() (or the flat initial state).
  std::span<const double> flux() const { return flux_; }
  double keff() const { return keff_; }

  /// The exact discrete eigenvalue of the unperturbed operator:
  /// nu_fission / (absorption + D*(Bx^2 + By^2)) with the discrete
  /// bucklings B^2 = (2 - 2cos(pi/n)) / h^2 of the zero-flux five-point
  /// stencil. solve() converges to this when anisotropy == 0.
  double analytic_keff() const;

 private:
  Engine& engine() const { return config_.engine != nullptr ? *config_.engine : Engine::global(); }
  obs::Tracer* sink() const {
    return config_.tracer != nullptr ? config_.tracer : obs::active_tracer();
  }

  // Surface indexing: vertical face (ix,iy), ix in [0,nx], left edge of
  // column ix; horizontal face (ix,iy), iy in [0,ny], bottom edge of row iy.
  std::size_t vsurf(std::size_t ix, std::size_t iy) const { return iy * (config_.nx + 1) + ix; }
  std::size_t hsurf(std::size_t ix, std::size_t iy) const {
    return (config_.nx + 1) * config_.ny + iy * config_.nx + ix;
  }
  std::size_t cell(std::size_t ix, std::size_t iy) const { return iy * config_.nx + ix; }

  void build_tracks();
  void build_operator_pattern();
  /// Net +axis finite-difference currents of `flux` into j (size surfaces()).
  void fd_currents(std::span<const double> flux, std::span<double> j) const;
  /// Per-segment tally values for the sweep: weight * J_fd(surface) *
  /// (1 + anisotropy * pattern).
  void segment_values(std::span<const double> j);
  void tally_via_frontend(std::span<double> currents);
  /// D-hat corrections from tallied vs finite-difference currents.
  void update_dhat(std::span<const double> tallied, std::span<const double> jfd,
                   std::span<const double> flux);
  /// Writes the CMFD operator values (fixed COO pattern) and diagonal.
  void assemble();
  /// y = A x through the engine (gather products, multireduce by row).
  void spmv(std::span<const double> x, std::span<double> y, const RunContext& ctx);
  /// Jacobi sweeps on A phi = b from the current phi; returns iterations.
  std::size_t inner_solve(std::span<const double> b, std::span<double> phi,
                          const RunContext& ctx);

  MeshTallyConfig config_;
  std::size_t surfaces_ = 0;

  // Track tally structure (fixed at construction).
  std::vector<label_t> labels_;            // segment -> surface
  std::vector<double> weights_;            // per-segment partition-of-unity
  std::vector<double> pattern_;            // deterministic perturbation in [-1,1]
  std::vector<std::size_t> track_bounds_;  // track t owns [bounds[t], bounds[t+1])

  // CMFD operator (fixed COO pattern, values rewritten every outer).
  std::vector<label_t> arow_;          // entry -> row (SpMV multireduce labels)
  std::vector<std::uint32_t> acol_;    // entry -> column (gather index)
  std::vector<double> aval_;           // entry values
  std::vector<std::size_t> diag_at_;   // cell -> its diagonal entry
  std::vector<std::size_t> east_at_;   // cell -> entry for (cell, cell+1), SIZE_MAX if none
  std::vector<std::size_t> west_at_;
  std::vector<std::size_t> north_at_;
  std::vector<std::size_t> south_at_;
  std::vector<double> diag_;           // assembled diagonal (Jacobi preconditioner)
  std::vector<double> dhat_;           // per-surface CMFD correction

  // Sweep scratch.
  std::vector<double> jfd_;       // finite-difference currents
  std::vector<double> jtally_;    // tallied currents
  std::vector<double> segval_;    // per-segment tally values
  std::vector<double> product_;   // SpMV gathered products
  std::vector<double> ax_;        // SpMV result
  std::vector<double> resid_;     // Jacobi residual
  std::vector<double> src_;       // fission source
  std::vector<double> phi_new_;

  // Solver state.
  std::vector<double> flux_;
  double keff_ = 1.0;
};

}  // namespace mp::apps
