#include "apps/mesh_tally.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <stdexcept>

#include "common/rng.hpp"
#include "serve/frontend.hpp"

namespace mp::apps {

namespace {

double l2_norm(std::span<const double> v) {
  double acc = 0.0;
  for (const double x : v) acc += x * x;
  return std::sqrt(acc);
}

}  // namespace

MeshTallySolver::MeshTallySolver(MeshTallyConfig config) : config_(config) {
  if (config_.nx < 2 || config_.ny < 2) throw std::invalid_argument("mesh_tally: nx, ny >= 2");
  if (!(config_.cell_size > 0.0)) throw std::invalid_argument("mesh_tally: cell_size > 0");
  if (!(config_.diffusion > 0.0) || !(config_.absorption > 0.0) || !(config_.nu_fission > 0.0))
    throw std::invalid_argument("mesh_tally: cross sections must be positive");
  surfaces_ = (config_.nx + 1) * config_.ny + config_.nx * (config_.ny + 1);
  build_tracks();
  build_operator_pattern();
  dhat_.assign(surfaces_, 0.0);
  jfd_.assign(surfaces_, 0.0);
  jtally_.assign(surfaces_, 0.0);
  diag_.assign(cells(), 0.0);
  product_.assign(arow_.size(), 0.0);
  ax_.assign(cells(), 0.0);
  resid_.assign(cells(), 0.0);
  src_.assign(cells(), 0.0);
  phi_new_.assign(cells(), 0.0);
  flux_.assign(cells(), 1.0);
}

void MeshTallySolver::build_tracks() {
  const std::size_t nx = config_.nx, ny = config_.ny;
  const std::size_t reps = std::max<std::size_t>(1, config_.track_repeat);
  labels_.clear();
  track_bounds_.assign(1, 0);
  const auto close_track = [&] { track_bounds_.push_back(labels_.size()); };
  for (std::size_t rep = 0; rep < reps; ++rep) {
    // Horizontal family: one track per mesh row, crossing every vertical
    // face of that row left to right. Together they cover all vertical
    // surfaces, so every surface class is referenced (no empty classes).
    for (std::size_t iy = 0; iy < ny; ++iy) {
      for (std::size_t ix = 0; ix <= nx; ++ix)
        labels_.push_back(static_cast<label_t>(vsurf(ix, iy)));
      close_track();
    }
    // Vertical family: one track per column, covering all horizontal faces.
    for (std::size_t ix = 0; ix < nx; ++ix) {
      for (std::size_t iy = 0; iy <= ny; ++iy)
        labels_.push_back(static_cast<label_t>(hsurf(ix, iy)));
      close_track();
    }
    // Diagonal family: irregular crossing counts, so surface weights are
    // non-uniform and the label stream is not a neat blocked pattern.
    if (config_.diagonal_tracks) {
      for (std::size_t d = 0; d < nx; ++d) {
        std::size_t ix = d, iy = 0;
        while (ix < nx && iy < ny) {
          labels_.push_back(static_cast<label_t>(vsurf(ix + 1, iy)));
          labels_.push_back(static_cast<label_t>(hsurf(ix, iy + 1)));
          ++ix;
          ++iy;
        }
        close_track();
      }
    }
  }
  // Deterministic per-segment perturbation pattern (the synthetic stand-in
  // for angular flux anisotropy) and partition-of-unity weights: the
  // segments crossing one surface split it evenly, so a tally of
  // weight * f(surface) reconstructs f exactly up to roundoff.
  pattern_.resize(labels_.size());
  Xoshiro256 rng(0x6d657368);  // fixed seed: the track set is part of the problem
  for (auto& p : pattern_) p = 2.0 * rng.uniform() - 1.0;
  std::vector<std::uint32_t> crossings(surfaces_, 0);
  for (const label_t s : labels_) ++crossings[s];
  weights_.resize(labels_.size());
  for (std::size_t k = 0; k < labels_.size(); ++k)
    weights_[k] = 1.0 / static_cast<double>(crossings[labels_[k]]);
}

void MeshTallySolver::build_operator_pattern() {
  const std::size_t nx = config_.nx, ny = config_.ny;
  const std::size_t none = static_cast<std::size_t>(-1);
  diag_at_.assign(cells(), none);
  east_at_.assign(cells(), none);
  west_at_.assign(cells(), none);
  north_at_.assign(cells(), none);
  south_at_.assign(cells(), none);
  arow_.clear();
  acol_.clear();
  const auto add = [&](std::size_t row, std::size_t col) {
    arow_.push_back(static_cast<label_t>(row));
    acol_.push_back(static_cast<std::uint32_t>(col));
    return arow_.size() - 1;
  };
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const std::size_t c = cell(ix, iy);
      diag_at_[c] = add(c, c);
      if (ix + 1 < nx) east_at_[c] = add(c, cell(ix + 1, iy));
      if (ix > 0) west_at_[c] = add(c, cell(ix - 1, iy));
      if (iy + 1 < ny) north_at_[c] = add(c, cell(ix, iy + 1));
      if (iy > 0) south_at_[c] = add(c, cell(ix, iy - 1));
    }
  }
  aval_.assign(arow_.size(), 0.0);
}

void MeshTallySolver::fd_currents(std::span<const double> flux, std::span<double> j) const {
  const std::size_t nx = config_.nx, ny = config_.ny;
  const double h = config_.cell_size;
  const double dt = config_.diffusion / h;        // interior face coupling
  const double dtb = 2.0 * config_.diffusion / h; // zero-flux boundary face
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix <= nx; ++ix) {
      double cur;
      if (ix == 0)
        cur = -dtb * flux[cell(0, iy)];
      else if (ix == nx)
        cur = dtb * flux[cell(nx - 1, iy)];
      else
        cur = -dt * (flux[cell(ix, iy)] - flux[cell(ix - 1, iy)]);
      j[vsurf(ix, iy)] = cur;
    }
  }
  for (std::size_t iy = 0; iy <= ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      double cur;
      if (iy == 0)
        cur = -dtb * flux[cell(ix, 0)];
      else if (iy == ny)
        cur = dtb * flux[cell(ix, ny - 1)];
      else
        cur = -dt * (flux[cell(ix, iy)] - flux[cell(ix, iy - 1)]);
      j[hsurf(ix, iy)] = cur;
    }
  }
}

void MeshTallySolver::segment_values(std::span<const double> j) {
  segval_.resize(labels_.size());
  const double eps = config_.anisotropy;
  // Fixed-point quantization (2^-30 grid): every segment value is an exact
  // integer multiple of 2^-30 with magnitude far below 2^23, so any partial
  // sum of one surface's segments stays exactly representable in a double.
  // That makes the tallied currents independent of summation order —
  // memcmp-identical across every strategy, SIMD tier and the per-track
  // frontend path — which is the reproducibility discipline production
  // tally codes use. The 2^-31 absolute quantization error is ~1e-9 of a
  // typical current, orders below the CMFD convergence tolerances.
  constexpr double kQuantum = 1024.0 * 1024.0 * 1024.0;  // 2^30
  for (std::size_t k = 0; k < labels_.size(); ++k) {
    const double raw = weights_[k] * j[labels_[k]] * (1.0 + eps * pattern_[k]);
    segval_[k] = std::nearbyint(raw * kQuantum) / kQuantum;
  }
}

void MeshTallySolver::tally_currents(std::span<const double> flux, std::span<double> currents,
                                     Strategy strategy, const RunContext& ctx) {
  fd_currents(flux, jfd_);
  segment_values(jfd_);
  engine().multireduce_into<double>(segval_, labels_, currents, Plus{}, strategy, ctx);
}

void MeshTallySolver::tally_currents(std::span<const double> flux, std::span<double> currents,
                                     const RunContext& ctx) {
  if (config_.frontend != nullptr) {
    fd_currents(flux, jfd_);
    segment_values(jfd_);
    tally_via_frontend(currents);
    return;
  }
  tally_currents(flux, currents, config_.strategy, ctx);
}

void MeshTallySolver::tally_via_frontend(std::span<double> currents) {
  // One tiny request per track: every track is a few dozen segments, so a
  // sweep is a burst of sub-tiny_batch_max_n submits the frontend coalesces
  // into the engine's fused batched sweep. Per-track partials are folded in
  // track order; the fixed-point quantization in segment_values makes that
  // fold exact, so the result is bit-identical to the single multireduce.
  // Submission is windowed below the frontend's default admission caps
  // (tenant in-flight, queue depth) so a big track set throttles instead of
  // shedding kOverloaded; each window still offers the coalescer a burst.
  constexpr std::size_t kWindow = 128;
  std::fill(currents.begin(), currents.end(), 0.0);
  std::vector<std::future<std::vector<double>>> parts;
  parts.reserve(kWindow);
  const auto drain = [&] {
    for (auto& part : parts) {
      const std::vector<double> partial = part.get();
      for (std::size_t s = 0; s < surfaces_; ++s) currents[s] += partial[s];
    }
    parts.clear();
  };
  for (std::size_t t = 0; t < tracks(); ++t) {
    const std::size_t lo = track_bounds_[t], hi = track_bounds_[t + 1];
    std::vector<double> vals(segval_.begin() + static_cast<std::ptrdiff_t>(lo),
                             segval_.begin() + static_cast<std::ptrdiff_t>(hi));
    std::vector<label_t> labs(labels_.begin() + static_cast<std::ptrdiff_t>(lo),
                              labels_.begin() + static_cast<std::ptrdiff_t>(hi));
    parts.push_back(config_.frontend->submit_multireduce<double>(std::move(vals), std::move(labs),
                                                                 surfaces_));
    if (parts.size() == kWindow) drain();
  }
  drain();
}

void MeshTallySolver::update_dhat(std::span<const double> tallied, std::span<const double> jfd,
                                  std::span<const double> flux) {
  const std::size_t nx = config_.nx, ny = config_.ny;
  const double h = config_.cell_size;
  const double dt = config_.diffusion / h;
  const double dtb = 2.0 * config_.diffusion / h;
  // D-hat is the per-face nonlinear correction: whatever current the tally
  // saw beyond the finite-difference model, expressed per unit of adjacent
  // flux. Clamped to the face's diffusion coupling so the corrected
  // operator stays diagonally dominant (the standard CMFD stabilization).
  const auto correction = [](double jt, double jf, double phisum, double clamp) {
    if (!(phisum > 1e-12)) return 0.0;
    return std::clamp((jt - jf) / phisum, -clamp, clamp);
  };
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix <= nx; ++ix) {
      const std::size_t s = vsurf(ix, iy);
      double phisum, clamp;
      if (ix == 0) {
        phisum = flux[cell(0, iy)];
        clamp = dtb;
      } else if (ix == nx) {
        phisum = flux[cell(nx - 1, iy)];
        clamp = dtb;
      } else {
        phisum = flux[cell(ix - 1, iy)] + flux[cell(ix, iy)];
        clamp = dt;
      }
      dhat_[s] = correction(tallied[s], jfd[s], phisum, clamp);
    }
  }
  for (std::size_t iy = 0; iy <= ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const std::size_t s = hsurf(ix, iy);
      double phisum, clamp;
      if (iy == 0) {
        phisum = flux[cell(ix, 0)];
        clamp = dtb;
      } else if (iy == ny) {
        phisum = flux[cell(ix, ny - 1)];
        clamp = dtb;
      } else {
        phisum = flux[cell(ix, iy - 1)] + flux[cell(ix, iy)];
        clamp = dt;
      }
      dhat_[s] = correction(tallied[s], jfd[s], phisum, clamp);
    }
  }
}

void MeshTallySolver::assemble() {
  const std::size_t nx = config_.nx, ny = config_.ny;
  const double h = config_.cell_size;
  const double dt = config_.diffusion / h;
  const double dtb = 2.0 * config_.diffusion / h;
  std::fill(aval_.begin(), aval_.end(), 0.0);
  // Cell balance divided by the cell volume: each face contributes its
  // outward corrected current J / h. On the face between l (left/below) and
  // r (right/above), J = -Dt*(phi_r - phi_l) + Dhat*(phi_r + phi_l); the
  // boundary faces use the zero-flux half-cell coupling 2D/h against the
  // adjacent cell only.
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const std::size_t c = cell(ix, iy);
      double diag = config_.absorption;
      {  // left face: this cell is r, outward current is -J
        const double dh = dhat_[vsurf(ix, iy)];
        if (ix == 0) {
          diag += (dtb - dh) / h;
        } else {
          diag += (dt - dh) / h;
          aval_[west_at_[c]] += (-dt - dh) / h;
        }
      }
      {  // right face: this cell is l, outward current is +J
        const double dh = dhat_[vsurf(ix + 1, iy)];
        if (ix == nx - 1) {
          diag += (dtb + dh) / h;
        } else {
          diag += (dt + dh) / h;
          aval_[east_at_[c]] += (-dt + dh) / h;
        }
      }
      {  // bottom face: this cell is r
        const double dh = dhat_[hsurf(ix, iy)];
        if (iy == 0) {
          diag += (dtb - dh) / h;
        } else {
          diag += (dt - dh) / h;
          aval_[south_at_[c]] += (-dt - dh) / h;
        }
      }
      {  // top face: this cell is l
        const double dh = dhat_[hsurf(ix, iy + 1)];
        if (iy == ny - 1) {
          diag += (dtb + dh) / h;
        } else {
          diag += (dt + dh) / h;
          aval_[north_at_[c]] += (-dt + dh) / h;
        }
      }
      aval_[diag_at_[c]] = diag;
      diag_[c] = diag;
    }
  }
}

void MeshTallySolver::spmv(std::span<const double> x, std::span<double> y, const RunContext& ctx) {
  // Paper Figure 12: gather the per-entry products, then multireduce over
  // the fixed row-label vector. Dispatching through the same engine as the
  // tally keeps both plans resident in one cache.
  for (std::size_t k = 0; k < aval_.size(); ++k) product_[k] = aval_[k] * x[acol_[k]];
  engine().multireduce_into<double>(product_, arow_, y, Plus{}, config_.strategy, ctx);
}

std::size_t MeshTallySolver::inner_solve(std::span<const double> b, std::span<double> phi,
                                         const RunContext& ctx) {
  spmv(phi, ax_, ctx);
  for (std::size_t i = 0; i < b.size(); ++i) resid_[i] = b[i] - ax_[i];
  const double norm0 = l2_norm(resid_);
  if (norm0 == 0.0) return 0;  // already at the fixed point — exact eigenpair
  const double target = config_.inner_tol * norm0;
  std::size_t iters = 0;
  while (iters < config_.max_inners) {
    for (std::size_t i = 0; i < b.size(); ++i) phi[i] += resid_[i] / diag_[i];
    ++iters;
    spmv(phi, ax_, ctx);
    for (std::size_t i = 0; i < b.size(); ++i) resid_[i] = b[i] - ax_[i];
    if (l2_norm(resid_) <= target) break;
  }
  return iters;
}

MeshTallyStats MeshTallySolver::solve() {
  flux_.assign(cells(), 1.0);
  keff_ = 1.0;
  MeshTallyStats out;
  Engine& eng = engine();
  const PlanCache::Stats cold = eng.plan_stats();
  PlanCache::Stats warm = cold;
  for (std::size_t outer = 1; outer <= config_.max_outers; ++outer) {
    RunContext ctx;
    if (config_.sweep_deadline.has_value()) ctx.set_timeout(*config_.sweep_deadline);
    ctx.counters = config_.counters;
    ctx.tracer = config_.tracer;
    {
      obs::ScopedSpan span(sink(), obs::Phase::kTallySweep);
      tally_currents(flux_, jtally_, ctx);
      ++out.tally_sweeps;
    }
    {
      obs::ScopedSpan span(sink(), obs::Phase::kCmfdSolve);
      update_dhat(jtally_, jfd_, flux_);
      assemble();
      for (std::size_t i = 0; i < cells(); ++i)
        src_[i] = config_.nu_fission * flux_[i] / keff_;
      std::copy(flux_.begin(), flux_.end(), phi_new_.begin());
      out.inners += inner_solve(src_, phi_new_, ctx);
    }
    {
      obs::ScopedSpan span(sink(), obs::Phase::kEigenUpdate);
      double fis_new = 0.0, fis_old = 0.0;
      for (std::size_t i = 0; i < cells(); ++i) {
        fis_new += phi_new_[i];
        fis_old += flux_[i];
      }
      const double knew = keff_ * fis_new / fis_old;
      out.keff_delta = std::abs(knew - keff_) / std::abs(knew);
      keff_ = knew;
      const double scale = static_cast<double>(cells()) / fis_new;
      for (std::size_t i = 0; i < cells(); ++i) flux_[i] = phi_new_[i] * scale;
    }
    out.outers = outer;
    if (outer == 1) warm = eng.plan_stats();
    if (outer >= 2 && out.keff_delta < config_.keff_tol) {
      out.converged = true;
      break;
    }
  }
  const PlanCache::Stats end = eng.plan_stats();
  out.keff = keff_;
  out.plan_hits = end.hits - cold.hits;
  out.plan_misses = end.misses - cold.misses;
  out.warm_plan_misses = end.misses - warm.misses;
  const std::uint64_t warm_hits = end.hits - warm.hits;
  const std::uint64_t warm_total = warm_hits + out.warm_plan_misses;
  out.warm_hit_rate =
      warm_total == 0 ? 1.0 : static_cast<double>(warm_hits) / static_cast<double>(warm_total);
  return out;
}

double MeshTallySolver::analytic_keff() const {
  const double h = config_.cell_size;
  const double bx2 = (2.0 - 2.0 * std::cos(M_PI / static_cast<double>(config_.nx))) / (h * h);
  const double by2 = (2.0 - 2.0 * std::cos(M_PI / static_cast<double>(config_.ny))) / (h * h);
  return config_.nu_fission / (config_.absorption + config_.diffusion * (bx2 + by2));
}

}  // namespace mp::apps
